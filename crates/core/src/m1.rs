//! `MaxFlow` — the Table I FPTAS for the maximum (receiver-weighted)
//! multicommodity overlay flow problem M1.
//!
//! Per iteration: compute the minimum overlay spanning tree of every
//! session under the current lengths, pick the one of minimum *normalized*
//! length (length · (|S_max|−1)/(|S_i|−1)), stop if that is ≥ 1, otherwise
//! route its bottleneck capacity `min_e c_e/n_e(t)` and grow the lengths of
//! its edges by `(1 + ε·n_e(t)·c/c_e)`. The accumulated flow divided by
//! `log_{1+ε}((1+ε)/δ)` is primal-feasible (Lemma 2) and within the target
//! ratio of optimal (Lemma 3).

use crate::engine::{Engine, LengthGrowth};
use crate::lengths::ScaledLengths;
use crate::ratio::{ln_delta_m1, m1_scale_divisor, ApproxParams};
use crate::solution::{summarize, FlowSummary};
use omcf_overlay::{TreeOracle, TreeStore};
use omcf_topology::Graph;

/// Result of a `MaxFlow` run.
#[derive(Clone, Debug)]
pub struct MaxFlowOutcome {
    /// The scaled, feasible flow (deduplicated trees with rates).
    pub store: TreeStore,
    /// Rates, throughput, tree counts, congestion.
    pub summary: FlowSummary,
    /// Primal objective `Σ_i (|S_i|−1)/(|S_max|−1) · rate_i` (the paper's
    /// M1 objective; the ratio guarantee applies to this).
    pub objective: f64,
    /// Best dual bound observed: `OPT ≤ dual_bound` by weak duality.
    pub dual_bound: f64,
    /// Minimum-overlay-spanning-tree computations performed (the paper's
    /// "running time" unit in Tables II/VII).
    pub mst_ops: u64,
    /// Length-update iterations (augmentations).
    pub iterations: u64,
    /// The ε actually used.
    pub eps: f64,
}

/// Runs `MaxFlow` over all sessions of the oracle.
///
/// ```
/// use omcf_core::{max_flow, ApproxParams};
/// use omcf_overlay::{DynamicOracle, Session, SessionSet};
/// use omcf_topology::{canned, NodeId};
///
/// // Three disjoint 2-hop paths of capacity 10 between nodes 0 and 4.
/// let g = canned::theta(10.0);
/// let sessions = SessionSet::new(vec![Session::new(vec![NodeId(0), NodeId(4)], 1.0)]);
/// let oracle = DynamicOracle::new(&g, &sessions);
/// let out = max_flow(&g, &oracle, ApproxParams::for_m1(0.9));
/// assert!(out.summary.session_rates[0] >= 0.9 * 30.0);
/// assert!(out.summary.max_congestion <= 1.0 + 1e-9);
/// ```
#[must_use]
pub fn max_flow<O: TreeOracle + ?Sized>(
    g: &Graph,
    oracle: &O,
    params: ApproxParams,
) -> MaxFlowOutcome {
    let all: Vec<usize> = (0..oracle.sessions().len()).collect();
    max_flow_subset(g, oracle, &all, params)
}

/// Table I policy over the [`Engine`]: every iteration recomputes all
/// selected sessions' trees, picks the globally minimum *normalized* one,
/// and augments its bottleneck capacity until that minimum reaches 1.
struct GlobalMinSchedule<'s> {
    session_ids: &'s [usize],
    smax: usize,
}

impl GlobalMinSchedule<'_> {
    fn norm(&self, receivers: usize) -> f64 {
        (self.smax as f64 - 1.0) / (receivers as f64)
    }

    fn drive<O: TreeOracle + ?Sized>(&self, g: &Graph, engine: &mut Engine<'_, O>) {
        let sessions = engine.sessions();
        loop {
            // Minimum overlay spanning tree per selected session; keep the
            // one of minimum normalized length.
            let (minlen_stored, tree) = engine.best_normalized_tree(self.session_ids, |i| {
                self.norm(sessions.session(i).receivers())
            });

            // Dual objective D1 = Σ c_e d_e; scale cancels in the ratio, so
            // the weak-duality bound OPT ≤ D1/α is computed in stored scale.
            engine.observe_alpha(minlen_stored);

            if minlen_stored >= engine.stored_one() {
                break;
            }
            let c = tree.bottleneck(g);
            debug_assert!(c.is_finite() && c > 0.0);
            engine.augment(tree, c);
        }
    }
}

/// Runs `MaxFlow` restricted to a subset of sessions (used by the M2
/// pre-pass to obtain per-session maximum flows λ_i).
#[must_use]
pub fn max_flow_subset<O: TreeOracle + ?Sized>(
    g: &Graph,
    oracle: &O,
    session_ids: &[usize],
    params: ApproxParams,
) -> MaxFlowOutcome {
    assert!(!session_ids.is_empty(), "no sessions selected");
    let sessions = oracle.sessions();
    let eps = params.eps;
    let smax = session_ids.iter().map(|&i| sessions.session(i).size()).max().unwrap();
    assert!(smax >= 2);
    let u = oracle.max_route_hops().max(1);
    let ln_delta = ln_delta_m1(eps, smax, u);
    // Largest true edge length over the run: (1+ε)·(|S_max|−1)·U slack
    // (Lemma 1/2 bound final lengths by (1+ε)(|S_max|−1); keep margin).
    let ln_top = ((1.0 + eps) * (smax as f64 - 1.0) * u as f64).ln() + 2.0;
    let lengths = ScaledLengths::new(&vec![1.0; g.edge_count()], ln_delta, ln_top);

    let mut engine = Engine::new(g, oracle, lengths, LengthGrowth::Fptas { eps });
    GlobalMinSchedule { session_ids, smax }.drive(g, &mut engine);
    let run = engine.finish();

    // Lemma 2: scale by log_{1+ε}((1+ε)/δ) for primal feasibility.
    let divisor = m1_scale_divisor(eps, ln_delta);
    let mut store = run.store;
    store.scale_all(1.0 / divisor);
    store.assert_feasible(g, 1e-9);

    let summary = summarize(&store, sessions, g);
    let weight = |i: usize| sessions.session(i).receivers() as f64 / (smax as f64 - 1.0);
    let objective: f64 = session_ids.iter().map(|&i| weight(i) * summary.session_rates[i]).sum();
    MaxFlowOutcome {
        store,
        summary,
        objective,
        dual_bound: run.dual_bound,
        mst_ops: run.mst_ops,
        iterations: run.iterations,
        eps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omcf_overlay::{DynamicOracle, FixedIpOracle, Session, SessionSet};
    use omcf_topology::{canned, NodeId};

    /// Two-member session on `k` parallel links of capacity `c`: optimum is
    /// `k·c` (each link is a spanning tree).
    #[test]
    fn saturates_parallel_links() {
        let g = canned::parallel_links(3, 10.0);
        let sessions = SessionSet::new(vec![Session::new(vec![NodeId(0), NodeId(1)], 1.0)]);
        let oracle = FixedIpOracle::new(&g, &sessions);
        // NOTE: fixed IP routing pins the pair to ONE link, so the fixed
        // oracle can only reach 10; the dynamic oracle reaches 30.
        let fixed = max_flow(&g, &oracle, ApproxParams::for_m1(0.9));
        assert!(fixed.summary.session_rates[0] <= 10.0 + 1e-9);
        assert!(fixed.summary.session_rates[0] >= 0.9 * 10.0);

        let dyn_oracle = DynamicOracle::new(&g, &sessions);
        let dynamic = max_flow(&g, &dyn_oracle, ApproxParams::for_m1(0.9));
        assert!(
            dynamic.summary.session_rates[0] >= 0.9 * 30.0,
            "dynamic rate {} should approach 30",
            dynamic.summary.session_rates[0]
        );
        dynamic.store.assert_feasible(&g, 1e-9);
    }

    /// On the theta graph the two-member max flow is 3 (three disjoint
    /// 2-hop paths); cross-check the FPTAS against the maxflow crate.
    #[test]
    fn matches_max_flow_on_theta_with_dynamic_routing() {
        let g = canned::theta(5.0);
        let sessions = SessionSet::new(vec![Session::new(vec![NodeId(0), NodeId(4)], 1.0)]);
        let oracle = DynamicOracle::new(&g, &sessions);
        let out = max_flow(&g, &oracle, ApproxParams::for_m1(0.92));
        let exact = 15.0; // 3 paths × capacity 5
        assert!(out.summary.session_rates[0] >= 0.92 * exact);
        assert!(out.summary.session_rates[0] <= exact + 1e-9);
    }

    #[test]
    fn respects_ratio_guarantee_via_duality_gap() {
        let g = canned::grid(4, 4, 50.0);
        let sessions = SessionSet::new(vec![
            Session::new(vec![NodeId(0), NodeId(5), NodeId(15)], 1.0),
            Session::new(vec![NodeId(3), NodeId(12)], 1.0),
        ]);
        let oracle = FixedIpOracle::new(&g, &sessions);
        let params = ApproxParams::for_m1(0.9);
        let out = max_flow(&g, &oracle, params);
        // Weak duality sandwich: primal ≤ OPT ≤ dual bound; the FPTAS
        // guarantee says primal ≥ ratio · OPT ≥ ratio · primal…, so check
        // primal ≥ ratio · dual_bound which implies the guarantee.
        assert!(out.objective <= out.dual_bound + 1e-9);
        assert!(
            out.objective >= params.ratio * out.dual_bound * 0.999,
            "objective {} vs dual {}",
            out.objective,
            out.dual_bound
        );
    }

    #[test]
    fn tighter_ratio_does_not_decrease_objective_much() {
        let g = canned::grid(4, 4, 20.0);
        let sessions =
            SessionSet::new(vec![Session::new(vec![NodeId(0), NodeId(10), NodeId(15)], 1.0)]);
        let oracle = FixedIpOracle::new(&g, &sessions);
        let loose = max_flow(&g, &oracle, ApproxParams::for_m1(0.9));
        let tight = max_flow(&g, &oracle, ApproxParams::for_m1(0.97));
        assert!(tight.objective >= loose.objective * 0.99);
        assert!(tight.mst_ops > loose.mst_ops, "tighter ratio must work harder");
    }

    #[test]
    fn multi_session_throughput_counts_receivers() {
        let g = canned::grid(3, 3, 30.0);
        let sessions = SessionSet::new(vec![
            Session::new(vec![NodeId(0), NodeId(2), NodeId(6), NodeId(8)], 1.0),
            Session::new(vec![NodeId(1), NodeId(7)], 1.0),
        ]);
        let oracle = FixedIpOracle::new(&g, &sessions);
        let out = max_flow(&g, &oracle, ApproxParams::for_m1(0.9));
        let expect = 3.0 * out.summary.session_rates[0] + 1.0 * out.summary.session_rates[1];
        assert!((out.summary.overall_throughput - expect).abs() < 1e-9);
        out.store.assert_feasible(&g, 1e-9);
    }

    #[test]
    fn subset_run_ignores_other_sessions() {
        let g = canned::grid(3, 3, 30.0);
        let sessions = SessionSet::new(vec![
            Session::new(vec![NodeId(0), NodeId(8)], 1.0),
            Session::new(vec![NodeId(2), NodeId(6)], 1.0),
        ]);
        let oracle = FixedIpOracle::new(&g, &sessions);
        let out = max_flow_subset(&g, &oracle, &[1], ApproxParams::for_m1(0.9));
        assert_eq!(out.summary.session_rates[0], 0.0);
        assert!(out.summary.session_rates[1] > 0.0);
    }

    #[test]
    fn solution_is_strictly_feasible() {
        let g = canned::ring(8, 10.0);
        let sessions = SessionSet::new(vec![
            Session::new(vec![NodeId(0), NodeId(3), NodeId(5)], 1.0),
            Session::new(vec![NodeId(1), NodeId(6)], 1.0),
        ]);
        let oracle = FixedIpOracle::new(&g, &sessions);
        let out = max_flow(&g, &oracle, ApproxParams::for_m1(0.93));
        assert!(out.summary.max_congestion <= 1.0 + 1e-9);
        assert!(out.iterations > 0);
        assert_eq!(out.mst_ops % 2, 0, "k=2 oracle calls per iteration incl. final");
    }
}
