//! Overlay multicommodity flow — the paper's contribution.
//!
//! Four algorithms over a shared substrate (physical graph, sessions,
//! minimum-overlay-spanning-tree oracle):
//!
//! | Module | Paper | Problem |
//! |--------|-------|---------|
//! | [`m1`] | Table I | `MaxFlow` — maximize receiver-weighted total throughput (FPTAS) |
//! | [`m2`] | Table III | `MaxConcurrentFlow` — maximize the common throughput fraction `f` (FPTAS, weighted max-min fairness) |
//! | [`rounding`] | Table V | `Random-MinCongestion` — one-or-few trees per session by randomized rounding of the M2 solution |
//! | [`online`] | Table VI | `Online-MinCongestion` — greedy exponential-length routing of arriving sessions |
//!
//! Both routing regimes are supported by instantiating the oracle:
//! [`omcf_overlay::FixedIpOracle`] (fixed IP shortest paths, §II–IV) or
//! [`omcf_overlay::DynamicOracle`] (arbitrary dynamic routing, §V).
//!
//! ## Numerics
//!
//! The FPTAS initializes lengths at `δ ≈ 10^{-100}…10^{-500}` depending on
//! the approximation ratio. [`lengths::ScaledLengths`] stores all lengths
//! pre-multiplied by a static power of two chosen so the whole trajectory
//! `[δ, ~|S_max|]` fits the `f64` range; minimum-tree selection is
//! scale-invariant and the termination test compares against the scaled
//! image of 1. Construction fails loudly when a ratio is requested whose
//! dynamic range cannot fit (beyond anything the paper evaluates).

pub mod dynamics;
pub mod engine;
pub mod exact;
pub mod lengths;
pub mod m1;
pub mod m1_fleischer;
pub mod m2;
pub mod online;
pub mod ratio;
pub mod residual;
pub mod rounding;
pub mod solution;
pub mod solver;

pub use dynamics::{JoinRouting, LiveId, OnlineSystem};
pub use engine::{
    replay_edge, AugmentMode, Contribution, Engine, EngineRun, EngineState, LengthGrowth,
};
pub use lengths::ScaledLengths;
pub use m1::{max_flow, max_flow_subset, MaxFlowOutcome};
pub use m1_fleischer::max_flow_fleischer;
pub use m2::{max_concurrent_flow, McfOutcome};
/// The workspace-wide execution policy (defined in `omcf-numerics` to
/// sit below `omcf-routing` in the dependency graph; this re-export is
/// the path downstream code should use).
pub use omcf_numerics::Parallelism;
pub use online::{online_min_congestion, OnlineOutcome};
pub use ratio::ApproxParams;
pub use residual::max_concurrent_flow_maxmin;
pub use rounding::{random_min_congestion, RoundingOutcome};
pub use solution::{session_rates, FlowSummary};
pub use solver::{Instance, RoutingMode, Solver, SolverKind, SolverOutcome};
