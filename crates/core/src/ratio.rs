//! Approximation-ratio bookkeeping: ε and δ.
//!
//! The experiments sweep an *approximation ratio* `r ∈ {0.90, …, 0.99}`;
//! the FPTAS is parameterized by `ε`. Lemma 3 guarantees `MaxFlow`
//! a `1/(1−ε)²` gap (result ≥ (1−ε)²·OPT), Lemma 5 gives
//! `MaxConcurrentFlow` `(1−ε)³`; we invert those forms exactly:
//! `ε_M1(r) = 1 − √r`, `ε_M2(r) = 1 − ∛r`.

/// Solver accuracy parameters derived from a target approximation ratio.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ApproxParams {
    /// Requested ratio `r ∈ (0, 1)`: the result is guaranteed ≥ `r · OPT`.
    pub ratio: f64,
    /// The ε driving the length-update schedule.
    pub eps: f64,
}

impl ApproxParams {
    /// Parameters for the `MaxFlow` FPTAS (M1): `ε = 1 − √r`.
    #[must_use]
    pub fn for_m1(ratio: f64) -> Self {
        assert!(ratio > 0.0 && ratio < 1.0, "ratio must be in (0, 1), got {ratio}");
        Self { ratio, eps: 1.0 - ratio.sqrt() }
    }

    /// Parameters for the `MaxConcurrentFlow` FPTAS (M2): `ε = 1 − ∛r`.
    #[must_use]
    pub fn for_m2(ratio: f64) -> Self {
        assert!(ratio > 0.0 && ratio < 1.0, "ratio must be in (0, 1), got {ratio}");
        Self { ratio, eps: 1.0 - ratio.cbrt() }
    }

    /// Direct construction from ε (ratio recorded as the M1 guarantee).
    #[must_use]
    pub fn from_eps(eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1), got {eps}");
        Self { ratio: (1.0 - eps) * (1.0 - eps), eps }
    }
}

/// `ln δ` for M1 (Lemma 3): `δ = (1+ε)^{1−1/ε} / ((|S_max|−1)·U)^{1/ε}`.
///
/// Computed in the log domain — the value itself underflows `f64` for tight
/// ratios.
#[must_use]
pub fn ln_delta_m1(eps: f64, smax: usize, max_route_hops: usize) -> f64 {
    assert!(smax >= 2, "need |S_max| >= 2");
    let u = max_route_hops.max(1) as f64;
    let inv = 1.0 / eps;
    (1.0 - inv) * (1.0 + eps).ln() - inv * ((smax as f64 - 1.0) * u).ln()
}

/// `ln δ` for M2 (Lemma 5): `δ = (|E|/(1−ε))^{−1/ε}`.
#[must_use]
pub fn ln_delta_m2(eps: f64, edge_count: usize) -> f64 {
    assert!(edge_count >= 1);
    -(1.0 / eps) * (edge_count as f64 / (1.0 - eps)).ln()
}

/// Final primal scaling divisor for M1 (Lemma 2):
/// `log_{1+ε}((1+ε)/δ)`.
#[must_use]
pub fn m1_scale_divisor(eps: f64, ln_delta: f64) -> f64 {
    ((1.0 + eps).ln() - ln_delta) / (1.0 + eps).ln()
}

/// Final primal scaling divisor for M2 (Lemma 4): `log_{1+ε}(1/δ)`.
#[must_use]
pub fn m2_scale_divisor(eps: f64, ln_delta: f64) -> f64 {
    -ln_delta / (1.0 + eps).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m1_eps_inverts_square() {
        let p = ApproxParams::for_m1(0.9025);
        assert!((p.eps - 0.05).abs() < 1e-12);
        let q = ApproxParams::for_m1(0.99);
        assert!((1.0 - q.eps).powi(2) >= 0.99 - 1e-12);
    }

    #[test]
    fn m2_eps_inverts_cube() {
        let p = ApproxParams::for_m2(0.857375); // 0.95^3
        assert!((p.eps - 0.05).abs() < 1e-12);
    }

    #[test]
    fn ln_delta_m1_matches_direct_formula_when_representable() {
        let eps = 0.1;
        let direct = (1.0f64 + eps).powf(1.0 - 1.0 / eps) / (6.0 * 10.0f64).powf(1.0 / eps);
        let viacln = ln_delta_m1(eps, 7, 10);
        assert!((viacln - direct.ln()).abs() < 1e-9);
    }

    #[test]
    fn ln_delta_m2_matches_direct() {
        let eps = 0.2;
        let direct = (300.0f64 / 0.8).powf(-5.0);
        assert!((ln_delta_m2(eps, 300) - direct.ln()).abs() < 1e-9);
    }

    #[test]
    fn tighter_ratio_means_smaller_delta() {
        let loose = ln_delta_m1(ApproxParams::for_m1(0.90).eps, 7, 10);
        let tight = ln_delta_m1(ApproxParams::for_m1(0.99).eps, 7, 10);
        assert!(tight < loose);
    }

    #[test]
    fn scale_divisors_positive_and_monotone() {
        let eps = 0.05;
        let d1 = m1_scale_divisor(eps, ln_delta_m1(eps, 7, 10));
        assert!(d1 > 1.0);
        let d2 = m2_scale_divisor(eps, ln_delta_m2(eps, 300));
        assert!(d2 > 1.0);
    }

    #[test]
    #[should_panic(expected = "ratio must be in")]
    fn rejects_ratio_one() {
        let _ = ApproxParams::for_m1(1.0);
    }
}
