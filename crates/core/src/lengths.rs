//! Statically rescaled edge lengths for the exponential-length FPTAS.
//!
//! All algorithms maintain per-edge lengths that start at a tiny `δ`
//! (possibly below `f64` range) and grow multiplicatively to `O(|S_max|)`.
//! Two facts make a *single static power-of-two rescale* sufficient:
//!
//! 1. minimum-spanning-tree / shortest-path selection is invariant under
//!    multiplying every length by a common constant;
//! 2. the only absolute tests — "normalized tree length ≥ 1" (M1) and
//!    "Σ c_e d_e ≥ 1" (M2) — compare against the constant 1, whose scaled
//!    image we precompute.
//!
//! We store `stored_e = true_e · 2^k` with `k` fixed at construction such
//! that `δ · 2^k = 2^{-960}` (comfortably above the subnormal cliff while
//! leaving ~10^{590} of headroom). Construction panics when a requested
//! δ/top pair cannot fit — that happens only beyond ratio ≈ 0.993 on
//! paper-scale instances, outside anything evaluated.
//!
//! Correctness of the rescaling is cross-checked against the exact
//! extended-range [`omcf_numerics::Xf64`] arithmetic in the tests below.

/// Scaled image of true 0 exposed for tests.
const STORED_DELTA_LOG2: f64 = -960.0;
/// Highest stored magnitude we allow before declaring the ratio infeasible.
const STORED_TOP_LIMIT_LOG2: f64 = 990.0;

/// Per-edge lengths under a static power-of-two rescale.
#[derive(Clone, Debug)]
pub struct ScaledLengths {
    stored: Vec<f64>,
    /// `stored = true · 2^log2_scale`.
    log2_scale: f64,
    /// Scaled image of the constant 1 (`2^log2_scale`), used by stop tests.
    stored_one: f64,
}

impl ScaledLengths {
    /// Initializes every edge to true length `exp(ln_delta) · weight_e`,
    /// where `weights` allows the M2-style `δ/c_e` initialization
    /// (pass `1/c_e`) and M1's uniform `δ` (pass `1`).
    ///
    /// `ln_top_estimate` must upper-bound the natural log of the largest
    /// true length any edge will reach; the constructor verifies the whole
    /// range fits the rescaled `f64` domain.
    #[must_use]
    pub fn new(weights: &[f64], ln_delta: f64, ln_top_estimate: f64) -> Self {
        assert!(!weights.is_empty(), "no edges");
        assert!(weights.iter().all(|w| *w > 0.0 && w.is_finite()), "weights must be positive");
        // Smallest initial true length: δ · min weight.
        let min_w = weights.iter().copied().fold(f64::INFINITY, f64::min);
        let ln2 = std::f64::consts::LN_2;
        let log2_delta = (ln_delta + min_w.ln()) / ln2;
        let log2_scale = STORED_DELTA_LOG2 - log2_delta;
        let log2_top_stored = ln_top_estimate / ln2 + log2_scale;
        assert!(
            log2_top_stored <= STORED_TOP_LIMIT_LOG2,
            "approximation ratio too tight: length dynamic range 2^{:.0} exceeds f64; \
             use a coarser ratio",
            log2_top_stored - STORED_DELTA_LOG2,
        );
        let delta_stored_base = (STORED_DELTA_LOG2 * ln2).exp() / min_w;
        let stored = weights.iter().map(|w| delta_stored_base * w).collect();
        let stored_one = (log2_scale * ln2).exp();
        Self { stored, log2_scale, stored_one }
    }

    /// Identity-scale store: lengths start at exactly `weights` and the
    /// stop-test constant is exactly `1.0`. Used by the online algorithm,
    /// whose `δ = 1` initialization (`d_e = 1/c_e`) needs no rescaling —
    /// every stored value is the true value, bit for bit.
    #[must_use]
    pub fn raw(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "no edges");
        assert!(weights.iter().all(|w| *w > 0.0 && w.is_finite()), "weights must be positive");
        Self { stored: weights.to_vec(), log2_scale: 0.0, stored_one: 1.0 }
    }

    /// The stored (rescaled) lengths — pass directly to the tree oracle.
    #[must_use]
    pub fn stored(&self) -> &[f64] {
        &self.stored
    }

    /// Scaled image of true 1.0: compare stored tree lengths against this
    /// for the paper's "length ≥ 1" tests. May be `inf` only if
    /// construction allowed it, which it does not.
    #[must_use]
    pub fn stored_one(&self) -> f64 {
        self.stored_one
    }

    /// Multiplies edge `e`'s length by `factor ≥ 1` (the exponential
    /// update `d_e ← d_e(1 + ε·…)`).
    pub fn scale_edge(&mut self, e: usize, factor: f64) {
        debug_assert!(factor >= 1.0 && factor.is_finite(), "length updates only grow");
        self.stored[e] *= factor;
        debug_assert!(self.stored[e].is_finite(), "length overflow on edge {e}");
    }

    /// Applies a batch of multiplicative updates `(edge, factor)` — the
    /// grouped twin of [`Self::scale_edge`]. `updates` must be sorted by
    /// edge id with each edge at most once; `slab` is caller-owned
    /// scratch (reused across batches, so warm callers pay no
    /// allocation).
    ///
    /// Dense batches (≥ 1/8 of the edges) are applied as a **sweep**:
    /// the factors are scattered into a `1.0`-filled dense slab and the
    /// whole stored array is multiplied in index order — one
    /// branch-light pass over two contiguous `f64` slabs the compiler
    /// can vectorize. Each edge still sees exactly one multiplication
    /// by exactly its own factor, and `x * 1.0` is bit-exact for every
    /// finite positive `x`, so the result is bit-identical to applying
    /// [`Self::scale_edge`] per update. Sparse batches skip the O(E)
    /// pass and apply pointwise.
    pub fn scale_edges(&mut self, updates: &[(u32, f64)], slab: &mut Vec<f64>) {
        debug_assert!(
            updates.windows(2).all(|w| w[0].0 < w[1].0),
            "batched updates must be sorted by edge id, each edge once"
        );
        debug_assert!(
            updates.iter().all(|&(_, f)| f >= 1.0 && f.is_finite()),
            "length updates only grow"
        );
        if updates.len() * 8 >= self.stored.len() {
            slab.clear();
            slab.resize(self.stored.len(), 1.0);
            for &(e, f) in updates {
                slab[e as usize] = f;
            }
            for (d, &f) in self.stored.iter_mut().zip(slab.iter()) {
                *d *= f;
            }
        } else {
            for &(e, f) in updates {
                self.stored[e as usize] *= f;
            }
        }
        debug_assert!(
            updates.iter().all(|&(e, _)| self.stored[e as usize].is_finite()),
            "length overflow in batched update"
        );
    }

    /// Overwrites edge `e`'s stored length — the rollback hook. Unlike
    /// [`Self::scale_edge`] this may *shrink* a length (a departing
    /// session's contribution is replayed out), which voids the
    /// monotone-growth reasoning behind epoch-based oracle caching: the
    /// caller owns invalidating any epoch clock covering this store
    /// (`EdgeEpochs::invalidate_all`).
    pub fn set_edge(&mut self, e: usize, stored: f64) {
        assert!(stored > 0.0 && stored.is_finite(), "lengths must stay positive and finite");
        self.stored[e] = stored;
    }

    /// True natural log of edge `e`'s length.
    #[must_use]
    pub fn ln_true(&self, e: usize) -> f64 {
        self.stored[e].ln() - self.log2_scale * std::f64::consts::LN_2
    }

    /// Σ `coeff_e · d_e` in stored scale (e.g. the D2 objective with
    /// `coeff = c_e`). Compare against [`Self::stored_one`].
    #[must_use]
    pub fn weighted_sum_stored(&self, coeffs: &[f64]) -> f64 {
        debug_assert_eq!(coeffs.len(), self.stored.len());
        self.stored
            .iter()
            .zip(coeffs)
            .map(|(d, c)| d * c)
            .collect::<omcf_numerics::NeumaierSum>()
            .value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omcf_numerics::Xf64;

    #[test]
    fn uniform_init_at_delta() {
        let ln_delta = -500.0; // e^-500 ≈ 10^-217, below f64::MIN_POSITIVE? no, representable
        let s = ScaledLengths::new(&[1.0, 1.0, 1.0], ln_delta, 5.0);
        // All stored equal; true value recovered through ln_true.
        assert!((s.ln_true(0) - ln_delta).abs() < 1e-9);
        assert_eq!(s.stored()[0], s.stored()[2]);
    }

    #[test]
    fn per_capacity_init() {
        // M2 style: weights = 1/c_e.
        let caps = [100.0f64, 50.0];
        let weights: Vec<f64> = caps.iter().map(|c| 1.0 / c).collect();
        let s = ScaledLengths::new(&weights, -30.0, 1.0);
        assert!((s.ln_true(0) - (-30.0 - 100.0f64.ln())).abs() < 1e-9);
        assert!((s.ln_true(1) - (-30.0 - 50.0f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn handles_delta_below_f64_range() {
        // ln δ = -900 ⇒ δ ≈ 10^-391, unrepresentable directly.
        let s = ScaledLengths::new(&[1.0, 1.0], -900.0, 3.0);
        assert!(s.stored()[0] > 0.0 && s.stored()[0].is_finite());
        assert!((s.ln_true(0) + 900.0).abs() < 1e-6);
        assert!(s.stored_one().is_finite());
    }

    #[test]
    fn growth_tracks_xf64_reference() {
        // Simulate the multiplicative trajectory with both representations
        // and compare the true logs at the end.
        let ln_delta = -800.0;
        let mut s = ScaledLengths::new(&[1.0], ln_delta, 5.0);
        let mut exact = Xf64::exp(ln_delta);
        let factors = [1.05, 1.1, 1.02, 1.3, 1.000001, 1.25];
        for _ in 0..200 {
            for &f in &factors {
                s.scale_edge(0, f);
                exact *= Xf64::from_f64(f);
            }
        }
        assert!(
            (s.ln_true(0) - exact.ln()).abs() < 1e-6,
            "scaled {} vs exact {}",
            s.ln_true(0),
            exact.ln()
        );
    }

    #[test]
    fn stop_test_against_stored_one() {
        let mut s = ScaledLengths::new(&[1.0], -50.0, 60.0);
        assert!(s.stored()[0] < s.stored_one());
        // Grow past true 1.0: multiply by e^51.
        let factor = (51.0f64 / 64.0).exp();
        for _ in 0..64 {
            s.scale_edge(0, factor);
        }
        assert!(s.stored()[0] > s.stored_one());
        assert!(s.ln_true(0) > 0.0);
    }

    #[test]
    fn raw_store_is_identity_scaled() {
        let mut s = ScaledLengths::raw(&[0.5, 0.25]);
        assert_eq!(s.stored(), &[0.5, 0.25]);
        assert_eq!(s.stored_one(), 1.0);
        assert!((s.ln_true(0) - 0.5f64.ln()).abs() < 1e-15);
        s.scale_edge(1, 3.0);
        assert_eq!(s.stored()[1], 0.75);
    }

    #[test]
    fn batched_scaling_matches_pointwise_bit_for_bit() {
        // Both slab crossover paths (dense sweep and sparse pointwise)
        // against the scale_edge reference, on awkward factors.
        let weights = [0.3, 1.7, 0.9, 2.2, 0.11, 5.0, 0.77, 1.01, 3.3, 0.5];
        let mut point = ScaledLengths::new(&weights, -40.0, 5.0);
        let mut batch = point.clone();
        let mut slab = Vec::new();
        // Dense batch: every edge, distinct factors.
        let dense: Vec<(u32, f64)> =
            (0..weights.len()).map(|e| (e as u32, 1.0 + 0.01 * (e as f64 + 1.0) / 3.0)).collect();
        for &(e, f) in &dense {
            point.scale_edge(e as usize, f);
        }
        batch.scale_edges(&dense, &mut slab);
        // Sparse batch: one edge of ten stays under the sweep crossover.
        let sparse = [(7u32, 1.000_000_1f64)];
        for &(e, f) in &sparse {
            point.scale_edge(e as usize, f);
        }
        batch.scale_edges(&sparse, &mut slab);
        for (a, b) in point.stored().iter().zip(batch.stored()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn weighted_sum_in_stored_scale() {
        let s = ScaledLengths::new(&[1.0, 1.0], -10.0, 2.0);
        let sum = s.weighted_sum_stored(&[2.0, 3.0]);
        assert!((sum / s.stored()[0] - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ratio too tight")]
    fn rejects_unrepresentable_range() {
        // δ = e^-5000: range way beyond f64 even after rescaling.
        let _ = ScaledLengths::new(&[1.0], -5000.0, 5.0);
    }

    #[test]
    fn paper_worst_case_fits() {
        // Table II's hardest column: r = 0.99 ⇒ ε ≈ 0.005, |S_max|−1 = 6,
        // U ≈ 10 ⇒ ln δ ≈ −817. Top estimate ln((1+ε)(|S_max|−1)) ≈ 1.8.
        let eps = 1.0 - 0.99f64.sqrt();
        let ln_delta = crate::ratio::ln_delta_m1(eps, 7, 10);
        assert!(ln_delta < -780.0, "expected extreme delta, got {ln_delta}");
        let s = ScaledLengths::new(&[1.0; 10], ln_delta, 2.0);
        assert!(s.stored_one().is_finite());
    }
}
