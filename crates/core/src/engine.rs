//! The shared Garg–Könemann length-update engine.
//!
//! All four of the paper's algorithms — `MaxFlow` (Table I), its Fleischer
//! variant, `MaxConcurrentFlow` (Table III) and `Online-MinCongestion`
//! (Table VI) — run the same inner loop: query the minimum overlay
//! spanning tree oracle under live edge lengths, route some amount of
//! flow on the returned tree, and grow the lengths of the edges it uses
//! multiplicatively. [`Engine`] owns that loop's state — the length store,
//! the [`EdgeEpochs`] touch clock that makes oracle caching exact, the
//! accumulating [`TreeStore`], and the `mst_ops`/iteration counters the
//! paper reports — so the solver modules reduce to *policies*: a phase
//! schedule, a normalization, and a termination rule driving the engine.
//!
//! The engine advances the epoch clock on every augmentation and stamps
//! each touched edge, which is what entitles epoch-aware oracles
//! ([`omcf_overlay::DynamicOracle`], [`omcf_overlay::FixedIpOracle`]) to
//! serve cached trees: lengths only ever grow, so an untouched cached
//! route provably remains optimal (see `docs/ENGINE.md`).
//!
//! ```
//! use omcf_core::engine::{Engine, LengthGrowth};
//! use omcf_core::ScaledLengths;
//! use omcf_overlay::{DynamicOracle, Session, SessionSet};
//! use omcf_topology::{canned, NodeId};
//!
//! // One augmentation step of a Table-I-style loop, by hand.
//! let g = canned::theta(10.0);
//! let sessions = SessionSet::new(vec![Session::new(vec![NodeId(0), NodeId(4)], 1.0)]);
//! let oracle = DynamicOracle::new(&g, &sessions);
//! let lengths = ScaledLengths::raw(&vec![1.0; g.edge_count()]);
//! let mut engine = Engine::new(&g, &oracle, lengths, LengthGrowth::Fptas { eps: 0.1 });
//! let tree = engine.min_tree(0);
//! let c = tree.bottleneck(&g);
//! engine.augment(tree, c);
//! let run = engine.finish();
//! assert_eq!(run.mst_ops, 1);
//! assert_eq!(run.iterations, 1);
//! ```

use crate::lengths::ScaledLengths;
use omcf_overlay::{EdgeEpochs, LengthView, OverlayTree, SessionSet, TreeOracle, TreeStore};
use omcf_topology::{EdgeId, Graph};

/// How an augmentation grows the lengths of the edges it crosses.
#[derive(Clone, Copy, Debug)]
pub enum LengthGrowth {
    /// FPTAS rule (Tables I/III): `d_e ← d_e · (1 + ε·n_e(t)·c/c_e)`.
    Fptas {
        /// The ε of the approximation schedule.
        eps: f64,
    },
    /// Online rule (Table VI): `d_e ← d_e · (1 + ρ·n_e(t)·dem/c_e)`, with
    /// the per-edge congestion contribution `n_e(t)·dem/c_e` accumulated
    /// into the engine's load table.
    Online {
        /// The step size ρ.
        rho: f64,
    },
}

/// Everything a finished run hands back to its policy.
#[derive(Clone, Debug)]
pub struct EngineRun {
    /// Accumulated (unscaled) flow; policies apply their feasibility
    /// scaling.
    pub store: TreeStore,
    /// Final length store (Fleischer's measured divisor reads it).
    pub lengths: ScaledLengths,
    /// Per-edge congestion `l_e` accumulated by [`LengthGrowth::Online`]
    /// augmentations (all zeros under the FPTAS rule).
    pub load: Vec<f64>,
    /// Minimum-overlay-spanning-tree computations performed — the paper's
    /// running-time unit in Tables II/VII.
    pub mst_ops: u64,
    /// Augmentations performed.
    pub iterations: u64,
    /// Best weak-duality bound observed via [`Engine::observe_alpha`]
    /// (`f64::INFINITY` if the policy never reported one).
    pub dual_bound: f64,
}

/// Shared state of one solver run: length store, epoch clock, flow store
/// and counters. Policies drive it through [`Self::min_tree`] /
/// [`Self::augment`] and read lengths through the accessors.
#[derive(Debug)]
pub struct Engine<'a, O: TreeOracle + ?Sized> {
    g: &'a Graph,
    oracle: &'a O,
    growth: LengthGrowth,
    lengths: ScaledLengths,
    epochs: EdgeEpochs,
    caps: Vec<f64>,
    load: Vec<f64>,
    store: TreeStore,
    mst_ops: u64,
    iterations: u64,
    dual_bound: f64,
}

impl<'a, O: TreeOracle + ?Sized> Engine<'a, O> {
    /// Starts a run over `g` with an initialized length store. The engine
    /// allocates a fresh epoch clock, so oracle caches from previous runs
    /// can never leak in.
    #[must_use]
    pub fn new(g: &'a Graph, oracle: &'a O, lengths: ScaledLengths, growth: LengthGrowth) -> Self {
        let caps: Vec<f64> = g.edge_ids().map(|e| g.capacity(e)).collect();
        Self {
            g,
            oracle,
            growth,
            lengths,
            epochs: EdgeEpochs::new(g.edge_count()),
            caps,
            load: vec![0.0; g.edge_count()],
            store: TreeStore::new(oracle.sessions().len()),
            mst_ops: 0,
            iterations: 0,
            dual_bound: f64::INFINITY,
        }
    }

    /// The session set served by the run's oracle. The borrow is detached
    /// from the engine (`'a`), so policies can hold it across mutations.
    #[must_use]
    pub fn sessions(&self) -> &'a SessionSet {
        self.oracle.sessions()
    }

    /// The minimum overlay spanning tree of session `i` under the current
    /// lengths, via the epoch-aware oracle path. Counts one `mst_op`.
    pub fn min_tree(&mut self, i: usize) -> OverlayTree {
        self.mst_ops += 1;
        self.oracle.min_tree_view(i, LengthView::with_epochs(self.lengths.stored(), &self.epochs))
    }

    /// One oracle sweep over `session_ids`, returning the tree of minimum
    /// *normalized* stored length (`norm(i) · length_i`; the first session
    /// wins ties) together with that length. Counts one `mst_op` per
    /// session.
    pub fn best_normalized_tree(
        &mut self,
        session_ids: &[usize],
        norm: impl Fn(usize) -> f64,
    ) -> (f64, OverlayTree) {
        let mut best: Option<(f64, OverlayTree)> = None;
        for &i in session_ids {
            let tree = self.min_tree(i);
            let len_stored = tree.length(self.lengths.stored()) * norm(i);
            if best.as_ref().is_none_or(|(b, _)| len_stored < *b) {
                best = Some((len_stored, tree));
            }
        }
        best.expect("nonempty session set")
    }

    /// Routes `amount` units on `tree` and grows the lengths of its edges
    /// under the configured [`LengthGrowth`] rule, advancing the epoch
    /// clock and stamping every touched edge. This is the single
    /// length-update implementation shared by all four solvers. Returns
    /// the tree's per-edge multiplicities for policies that need them
    /// (the online post-pass).
    pub fn augment(&mut self, tree: OverlayTree, amount: f64) -> Vec<(EdgeId, u32)> {
        self.iterations += 1;
        self.epochs.advance();
        let mults = tree.edge_multiplicities();
        self.store.add(tree, amount);
        for &(e, n) in &mults {
            let cap = self.g.capacity(e);
            let factor = match self.growth {
                LengthGrowth::Fptas { eps } => 1.0 + eps * f64::from(n) * amount / cap,
                LengthGrowth::Online { rho } => {
                    let add = f64::from(n) * amount / cap;
                    self.load[e.idx()] += add;
                    1.0 + rho * add
                }
            };
            self.lengths.scale_edge(e.idx(), factor);
            if matches!(self.growth, LengthGrowth::Online { .. }) {
                assert!(
                    self.lengths.stored()[e.idx()].is_finite(),
                    "online length overflow; lower rho"
                );
            }
            self.epochs.touch(e.idx());
        }
        mults
    }

    /// Reports a normalized minimum tree length `α` (stored scale); the
    /// engine tracks the best weak-duality bound `min D/α` over the run.
    pub fn observe_alpha(&mut self, alpha_stored: f64) {
        let bound = self.dual_objective_stored() / alpha_stored;
        if bound < self.dual_bound {
            self.dual_bound = bound;
        }
    }

    /// The dual objective `D = Σ_e c_e·d_e` in stored scale — compare
    /// against [`Self::stored_one`].
    #[must_use]
    pub fn dual_objective_stored(&self) -> f64 {
        self.lengths.weighted_sum_stored(&self.caps)
    }

    /// Stored image of the constant 1 (the stop-test threshold).
    #[must_use]
    pub fn stored_one(&self) -> f64 {
        self.lengths.stored_one()
    }

    /// The live stored lengths (for policies computing tree lengths).
    #[must_use]
    pub fn stored_lengths(&self) -> &[f64] {
        self.lengths.stored()
    }

    /// `mst_ops` so far.
    #[must_use]
    pub fn mst_ops(&self) -> u64 {
        self.mst_ops
    }

    /// Augmentations so far.
    #[must_use]
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Ends the run, releasing the accumulated state to the policy.
    #[must_use]
    pub fn finish(self) -> EngineRun {
        EngineRun {
            store: self.store,
            lengths: self.lengths,
            load: self.load,
            mst_ops: self.mst_ops,
            iterations: self.iterations,
            dual_bound: self.dual_bound,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omcf_overlay::{FixedIpOracle, Session, SessionSet};
    use omcf_topology::{canned, NodeId};

    fn setup() -> (Graph, SessionSet) {
        let g = canned::grid(3, 3, 10.0);
        let sessions = SessionSet::new(vec![
            Session::new(vec![NodeId(0), NodeId(8)], 1.0),
            Session::new(vec![NodeId(2), NodeId(6)], 1.0),
        ]);
        (g, sessions)
    }

    #[test]
    fn counts_mst_ops_and_iterations() {
        let (g, sessions) = setup();
        let oracle = FixedIpOracle::new(&g, &sessions);
        let lengths = ScaledLengths::raw(&vec![1.0; g.edge_count()]);
        let mut engine = Engine::new(&g, &oracle, lengths, LengthGrowth::Fptas { eps: 0.1 });
        let (len, tree) = engine.best_normalized_tree(&[0, 1], |_| 1.0);
        assert!(len > 0.0);
        assert_eq!(engine.mst_ops(), 2);
        let c = tree.bottleneck(&g);
        engine.augment(tree, c);
        assert_eq!(engine.iterations(), 1);
        let run = engine.finish();
        assert_eq!(run.mst_ops, 2);
        assert!(run.load.iter().all(|l| *l == 0.0), "FPTAS growth does not track load");
    }

    #[test]
    fn online_growth_accumulates_load() {
        let (g, sessions) = setup();
        let oracle = FixedIpOracle::new(&g, &sessions);
        let inv_caps: Vec<f64> = g.edge_ids().map(|e| 1.0 / g.capacity(e)).collect();
        let lengths = ScaledLengths::raw(&inv_caps);
        let mut engine = Engine::new(&g, &oracle, lengths, LengthGrowth::Online { rho: 10.0 });
        let tree = engine.min_tree(0);
        let mults = engine.augment(tree, 5.0);
        assert!(!mults.is_empty());
        let run = engine.finish();
        let loaded: Vec<f64> = run.load.iter().copied().filter(|l| *l > 0.0).collect();
        assert_eq!(loaded.len(), mults.len());
        // 2-member session on unit-multiplicity edges: load = dem/cap.
        assert!(loaded.iter().all(|l| (*l - 0.5).abs() < 1e-12));
    }

    #[test]
    fn length_growth_invalidates_only_touched_routes() {
        let g = canned::grid(3, 3, 10.0);
        // Edge-disjoint single-hop sessions: augmenting one can never
        // invalidate the other's cached tree.
        let sessions = SessionSet::new(vec![
            Session::new(vec![NodeId(0), NodeId(1)], 1.0),
            Session::new(vec![NodeId(7), NodeId(8)], 1.0),
        ]);
        let oracle = FixedIpOracle::new(&g, &sessions);
        let lengths = ScaledLengths::raw(&vec![1.0; g.edge_count()]);
        let mut engine = Engine::new(&g, &oracle, lengths, LengthGrowth::Fptas { eps: 0.5 });
        // Prime both sessions' caches, then augment only session 0's tree.
        let t0 = engine.min_tree(0);
        let _t1 = engine.min_tree(1);
        engine.augment(t0, 1.0);
        let _ = engine.min_tree(0);
        let _ = engine.min_tree(1);
        let stats = oracle.cache_stats();
        // Session 1's second query is the only hit: its own first query and
        // both of session 0's (initial, then invalidated) must recompute.
        assert_eq!((stats.hits, stats.misses), (1, 3), "unexpected cache behavior: {stats:?}");
    }

    #[test]
    fn observe_alpha_tracks_best_bound() {
        let (g, sessions) = setup();
        let oracle = FixedIpOracle::new(&g, &sessions);
        let lengths = ScaledLengths::raw(&vec![1.0; g.edge_count()]);
        let mut engine = Engine::new(&g, &oracle, lengths, LengthGrowth::Fptas { eps: 0.1 });
        engine.observe_alpha(2.0);
        let first = engine.dual_objective_stored() / 2.0;
        engine.observe_alpha(1.0); // worse (larger) bound: ignored
        let run = engine.finish();
        assert!((run.dual_bound - first).abs() < 1e-12);
    }
}
