//! The shared Garg–Könemann length-update engine.
//!
//! All four of the paper's algorithms — `MaxFlow` (Table I), its Fleischer
//! variant, `MaxConcurrentFlow` (Table III) and `Online-MinCongestion`
//! (Table VI) — run the same inner loop: query the minimum overlay
//! spanning tree oracle under live edge lengths, route some amount of
//! flow on the returned tree, and grow the lengths of the edges it uses
//! multiplicatively. [`Engine`] owns that loop's state — the length store,
//! the [`EdgeEpochs`] touch clock that makes oracle caching exact, the
//! accumulating [`TreeStore`], and the `mst_ops`/iteration counters the
//! paper reports — so the solver modules reduce to *policies*: a phase
//! schedule, a normalization, and a termination rule driving the engine.
//!
//! The engine stamps every edge an augmentation touches on the epoch
//! clock, which is what entitles epoch-aware oracles
//! ([`omcf_overlay::DynamicOracle`], [`omcf_overlay::FixedIpOracle`]) to
//! serve cached trees: lengths only ever grow, so an untouched cached
//! route provably remains optimal (see `docs/ENGINE.md`). The clock
//! advances lazily — on the first augmentation after an oracle query,
//! not on every augmentation — so a phase-batched schedule that augments
//! several times between queries invalidates caches once per batch
//! (Fleischer-style phase batching; validity verdicts are identical
//! either way).
//!
//! ```
//! use omcf_core::engine::{Engine, LengthGrowth};
//! use omcf_core::ScaledLengths;
//! use omcf_overlay::{DynamicOracle, Session, SessionSet};
//! use omcf_topology::{canned, NodeId};
//!
//! // One augmentation step of a Table-I-style loop, by hand.
//! let g = canned::theta(10.0);
//! let sessions = SessionSet::new(vec![Session::new(vec![NodeId(0), NodeId(4)], 1.0)]);
//! let oracle = DynamicOracle::new(&g, &sessions);
//! let lengths = ScaledLengths::raw(&vec![1.0; g.edge_count()]);
//! let mut engine = Engine::new(&g, &oracle, lengths, LengthGrowth::Fptas { eps: 0.1 });
//! let tree = engine.min_tree(0);
//! let c = tree.bottleneck(&g);
//! engine.augment(tree, c);
//! let run = engine.finish();
//! assert_eq!(run.mst_ops, 1);
//! assert_eq!(run.iterations, 1);
//! ```

use crate::lengths::ScaledLengths;
use omcf_overlay::{EdgeEpochs, LengthView, OverlayTree, SessionSet, TreeOracle, TreeStore};
use omcf_telemetry::stats;
use omcf_topology::{EdgeId, Graph};

/// One admitted participant's routed contribution: the deduplicated
/// per-edge multiplicities of its tree (sorted by edge id, as
/// [`Engine::augment`] returns them) plus the amount routed along it.
/// This is the unit of exact rollback: a long-running runtime records one
/// `Contribution` per admission and hands the surviving ones back to
/// [`EngineState::rollback`] when a session departs.
#[derive(Clone, Debug, PartialEq)]
pub struct Contribution {
    /// `(edge, n_e(t))` pairs, sorted by edge id, each edge once.
    pub edges: Vec<(EdgeId, u32)>,
    /// Flow amount routed on the tree (the session demand, for the online
    /// rule).
    pub amount: f64,
}

impl Contribution {
    /// The multiplicity this contribution places on edge `e` (0 if the
    /// tree does not cross it).
    #[must_use]
    pub fn multiplicity(&self, e: EdgeId) -> u32 {
        self.edges.binary_search_by_key(&e, |p| p.0).map_or(0, |k| self.edges[k].1)
    }
}

/// Replays the online exponential-length trajectory of **one edge** from
/// its base value: folds `load += add; length *= 1 + ρ·add` over `adds`
/// in order, exactly the float-op sequence [`Engine::augment`] performs
/// incrementally. Every exact-rollback path in the workspace
/// ([`EngineState::rollback`], [`crate::OnlineSystem::leave`]) goes
/// through this single function, so an edge recomputed after a departure
/// is bit-identical to one that accumulated only the surviving
/// contributions in the first place.
#[must_use]
pub fn replay_edge(base: f64, rho: f64, adds: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut load = 0.0;
    let mut length = base;
    for add in adds {
        load += add;
        length *= 1.0 + rho * add;
    }
    (load, length)
}

/// When the engine *applies* the length growth an augmentation computes.
///
/// Either way the grown values are **bit-identical**: the growth factor
/// of every edge is computed at augmentation time from the lengths the
/// per-edge path would have seen (a tree's multiplicities list each edge
/// once, so the factors of one augmentation never compound), and batched
/// application multiplies each edge by exactly the factors the per-edge
/// path would have, in the same order. Only *when* the stores are
/// written changes — and every read goes through a flushing accessor, so
/// no caller can observe a stale length (see `docs/ENGINE.md`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AugmentMode {
    /// Accumulate each augmentation's `(edge, factor)` pairs and apply
    /// the whole phase in one pass at the next length read — a dense
    /// index-order sweep when the batch covers enough of the edge array
    /// ([`ScaledLengths::scale_edges`]). The `advance_pending` latch
    /// guarantees no oracle reads lengths mid-batch, which is what makes
    /// the deferral safe.
    Batched,
    /// Apply each augmentation's factors immediately (the historical
    /// point-update path).
    PerEdge,
}

/// Process-wide default augment mode: 0 = batched, 1 = per-edge.
/// A plain atomic (not first-set-wins like the queue-kind default) so a
/// bench can A/B both modes in one process.
static DEFAULT_AUGMENT_MODE: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

impl AugmentMode {
    /// Every mode, in vocabulary order.
    pub const ALL: [AugmentMode; 2] = [AugmentMode::Batched, AugmentMode::PerEdge];

    /// Human-readable list of valid names for error messages.
    pub const VOCABULARY: &'static str = "`batched`, `per-edge`";

    /// Canonical CLI name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AugmentMode::Batched => "batched",
            AugmentMode::PerEdge => "per-edge",
        }
    }

    /// Parses a CLI name ([`Self::VOCABULARY`]).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "batched" => Some(AugmentMode::Batched),
            "per-edge" => Some(AugmentMode::PerEdge),
            _ => None,
        }
    }

    /// Sets the process-wide default mode new engines start in.
    /// Unlike the queue-kind default this is re-settable: results are
    /// bit-identical across modes, so flipping it mid-process can never
    /// invalidate existing state — it only redirects future engines.
    pub fn set_process_default(mode: AugmentMode) {
        DEFAULT_AUGMENT_MODE.store(
            matches!(mode, AugmentMode::PerEdge) as u8,
            std::sync::atomic::Ordering::Relaxed,
        );
    }

    /// The current process-wide default ([`AugmentMode::Batched`] unless
    /// overridden).
    #[must_use]
    pub fn process_default() -> AugmentMode {
        if DEFAULT_AUGMENT_MODE.load(std::sync::atomic::Ordering::Relaxed) == 0 {
            AugmentMode::Batched
        } else {
            AugmentMode::PerEdge
        }
    }
}

/// How an augmentation grows the lengths of the edges it crosses.
#[derive(Clone, Copy, Debug)]
pub enum LengthGrowth {
    /// FPTAS rule (Tables I/III): `d_e ← d_e · (1 + ε·n_e(t)·c/c_e)`.
    Fptas {
        /// The ε of the approximation schedule.
        eps: f64,
    },
    /// Online rule (Table VI): `d_e ← d_e · (1 + ρ·n_e(t)·dem/c_e)`, with
    /// the per-edge congestion contribution `n_e(t)·dem/c_e` accumulated
    /// into the engine's load table.
    Online {
        /// The step size ρ.
        rho: f64,
    },
}

/// Everything a finished run hands back to its policy.
#[derive(Clone, Debug)]
pub struct EngineRun {
    /// Accumulated (unscaled) flow; policies apply their feasibility
    /// scaling.
    pub store: TreeStore,
    /// Final length store (Fleischer's measured divisor reads it).
    pub lengths: ScaledLengths,
    /// Per-edge congestion `l_e` accumulated by [`LengthGrowth::Online`]
    /// augmentations (all zeros under the FPTAS rule).
    pub load: Vec<f64>,
    /// Minimum-overlay-spanning-tree computations performed — the paper's
    /// running-time unit in Tables II/VII.
    pub mst_ops: u64,
    /// Augmentations performed.
    pub iterations: u64,
    /// Best weak-duality bound observed via [`Engine::observe_alpha`]
    /// (`f64::INFINITY` if the policy never reported one).
    pub dual_bound: f64,
}

/// The engine's detachable mutable state: length store, epoch clock,
/// load table, flow store and counters. A batch solver never sees this
/// type — [`Engine::new`] builds one internally and [`Engine::finish`]
/// consumes it — but an event-driven runtime keeps an `EngineState` alive
/// across events, re-attaching it to a short-lived [`Engine`] per event
/// via [`Engine::resume`] / [`Engine::suspend`] (the warm-start hooks)
/// and rolling departures back through [`Self::rollback`].
#[derive(Debug)]
pub struct EngineState {
    /// Live per-edge lengths.
    pub lengths: ScaledLengths,
    /// Touch clock entitling epoch-aware oracles to cache.
    pub epochs: EdgeEpochs,
    /// Per-edge congestion accumulated by [`LengthGrowth::Online`].
    pub load: Vec<f64>,
    /// Accumulated (unscaled) flow.
    pub store: TreeStore,
    /// Oracle invocations so far.
    pub mst_ops: u64,
    /// Augmentations so far.
    pub iterations: u64,
    /// Best weak-duality bound observed.
    pub dual_bound: f64,
}

impl EngineState {
    /// Fresh state for the online rule over `g`: identity-scale lengths at
    /// the Table VI initialization `d_e = 1/c_e`, an empty load table and
    /// an empty zero-session store (grow it with
    /// [`TreeStore::push_session`] as participants join).
    #[must_use]
    pub fn online(g: &Graph) -> Self {
        let inv_caps: Vec<f64> = g.edge_ids().map(|e| 1.0 / g.capacity(e)).collect();
        Self::fresh(ScaledLengths::raw(&inv_caps), g.edge_count(), 0)
    }

    /// Fresh state with the given length store over `edge_count` edges and
    /// `k` store sessions.
    #[must_use]
    pub fn fresh(lengths: ScaledLengths, edge_count: usize, k: usize) -> Self {
        Self {
            lengths,
            epochs: EdgeEpochs::new(edge_count),
            load: vec![0.0; edge_count],
            store: TreeStore::new(k),
            mst_ops: 0,
            iterations: 0,
            dual_bound: f64::INFINITY,
        }
    }

    /// Exactly reverts session `session`'s departed contribution under the
    /// online rule: every edge the departed tree crossed is recomputed
    /// **from scratch** through [`replay_edge`] — base `1/c_e`, then the
    /// surviving contributions' factors in admission order — rather than
    /// divided out, so the restored lengths and loads are bit-identical to
    /// a trajectory that only ever admitted the survivors with the same
    /// trees (see `docs/RUNTIME.md` for why division cannot achieve this).
    /// The departed session's trees are dropped from the store, and the
    /// epoch clock is fully invalidated: a shrunk length voids the
    /// monotone-growth reasoning that lets untouched cached routes survive,
    /// so every cache entry must revalidate.
    ///
    /// `survivors` must list the live contributions in admission (join)
    /// order and must not include the departed one.
    pub fn rollback(
        &mut self,
        g: &Graph,
        rho: f64,
        session: usize,
        departed: &Contribution,
        survivors: &[&Contribution],
    ) {
        let edges: Vec<EdgeId> = departed.edges.iter().map(|&(e, _)| e).collect();
        self.replay_edges(g, rho, &edges, survivors);
        self.store.clear_session(session);
        self.epochs.invalidate_all();
    }

    /// Recomputes `edges`' loads and lengths from the current capacities
    /// and the live contributions (admission order) — the exact-replay
    /// primitive behind [`Self::rollback`] and behind capacity
    /// reconfiguration, where an edge's base length `1/c_e` and every
    /// `n·dem/c_e` term change while the routed trees stay pinned. Callers
    /// changing capacities must invalidate the epoch clock themselves if
    /// any length can shrink.
    pub fn replay_edges(&mut self, g: &Graph, rho: f64, edges: &[EdgeId], live: &[&Contribution]) {
        for &e in edges {
            let cap = g.capacity(e);
            let adds = live.iter().filter_map(|c| {
                let n = c.multiplicity(e);
                (n > 0).then(|| f64::from(n) * c.amount / cap)
            });
            let (load, length) = replay_edge(1.0 / cap, rho, adds);
            self.load[e.idx()] = load;
            self.lengths.set_edge(e.idx(), length);
        }
    }
}

/// Shared state of one solver run: length store, epoch clock, flow store
/// and counters. Policies drive it through [`Self::min_tree`] /
/// [`Self::augment`] and read lengths through the accessors.
#[derive(Debug)]
pub struct Engine<'a, O: TreeOracle + ?Sized> {
    g: &'a Graph,
    oracle: &'a O,
    growth: LengthGrowth,
    /// Capacity table for the dual objective, materialized on first use:
    /// only the M1/M2 stop-test paths read it, and the per-event
    /// resume/suspend cycle of an online runtime must stay O(1), not pay
    /// an O(E) fill for a table it never touches.
    caps: std::cell::OnceCell<Vec<f64>>,
    /// Lazy epoch-advance latch (phase batching): set by every oracle
    /// query, consumed by the first augmentation after it. Consecutive
    /// augmentations with no query in between then share one epoch, so a
    /// whole batch of length-growth steps invalidates epoch-cached
    /// oracles once instead of once per augmentation. Validity verdicts
    /// are unchanged — an entry cached at query epoch `E` still sees every
    /// later touch stamped `> E` — and schedules that query between every
    /// augmentation (M1/M2/online today) advance exactly as before.
    advance_pending: bool,
    /// When the length store is written (never *what*): see [`AugmentMode`].
    mode: AugmentMode,
    /// [`AugmentMode::Batched`] accumulator: `(edge, factor)` pairs in
    /// augmentation event order, applied by [`Self::flush_pending`] at
    /// the next length read. Factors are computed at augmentation time,
    /// so deferral never changes a value.
    pending: Vec<(u32, f64)>,
    /// Dense-sweep scratch for [`ScaledLengths::scale_edges`].
    slab: Vec<f64>,
    state: EngineState,
}

impl<'a, O: TreeOracle + ?Sized> Engine<'a, O> {
    /// Starts a run over `g` with an initialized length store. The engine
    /// allocates a fresh epoch clock, so oracle caches from previous runs
    /// can never leak in.
    #[must_use]
    pub fn new(g: &'a Graph, oracle: &'a O, lengths: ScaledLengths, growth: LengthGrowth) -> Self {
        let state = EngineState::fresh(lengths, g.edge_count(), oracle.sessions().len());
        Self::resume(g, oracle, growth, state)
    }

    /// Re-attaches persistent state from a previous engine — the
    /// warm-start hook. An event-driven runtime holds one [`EngineState`]
    /// across its whole life and wraps it in a fresh `Engine` (typically
    /// with a fresh per-event oracle) for each event it processes; nothing
    /// in the state is reset, so lengths, loads, store and counters carry
    /// over exactly.
    #[must_use]
    pub fn resume(g: &'a Graph, oracle: &'a O, growth: LengthGrowth, state: EngineState) -> Self {
        assert_eq!(state.lengths.stored().len(), g.edge_count(), "length store sized for g");
        assert_eq!(state.load.len(), g.edge_count(), "load table sized for g");
        Self {
            g,
            oracle,
            growth,
            caps: std::cell::OnceCell::new(),
            advance_pending: true,
            mode: AugmentMode::process_default(),
            pending: Vec::new(),
            slab: Vec::new(),
            state,
        }
    }

    /// Overrides the [`AugmentMode`] for this engine (builder-style).
    /// Any accumulated batch is applied first, so switching modes
    /// mid-run is safe (results are mode-independent regardless).
    #[must_use]
    pub fn with_augment_mode(mut self, mode: AugmentMode) -> Self {
        self.flush_pending();
        self.mode = mode;
        self
    }

    /// The engine's current [`AugmentMode`].
    #[must_use]
    pub fn augment_mode(&self) -> AugmentMode {
        self.mode
    }

    /// Applies the accumulated batch of length updates — the write half
    /// of every read barrier. One augmentation's factors are sorted by
    /// edge id with each edge once (tree multiplicities), so a
    /// single-augment batch — and any multi-augment batch over disjoint
    /// trees — takes the sweep path; a batch that grew the same edge
    /// twice replays pointwise in event order, preserving the exact
    /// float-op sequence of the per-edge mode.
    fn flush_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        stats::ENGINE_FLUSHES.inc();
        stats::ENGINE_FLUSH_EDGES.add(self.pending.len() as u64);
        if self.pending.windows(2).all(|w| w[0].0 < w[1].0) {
            stats::ENGINE_FLUSH_SWEEPS.inc();
            self.state.lengths.scale_edges(&self.pending, &mut self.slab);
        } else {
            for &(e, f) in &self.pending {
                self.state.lengths.scale_edge(e as usize, f);
            }
        }
        if matches!(self.growth, LengthGrowth::Online { .. }) {
            // The per-edge mode asserts finiteness at every step; here
            // the whole batch lands at once, so scan it on apply.
            for &(e, _) in &self.pending {
                assert!(
                    self.state.lengths.stored()[e as usize].is_finite(),
                    "online length overflow; lower rho"
                );
            }
        }
        self.pending.clear();
    }

    /// Detaches the persistent state for the next [`Self::resume`] — the
    /// counterpart warm-start hook to [`Self::resume`].
    #[must_use]
    pub fn suspend(mut self) -> EngineState {
        self.flush_pending();
        self.state
    }

    /// The session set served by the run's oracle. The borrow is detached
    /// from the engine (`'a`), so policies can hold it across mutations.
    #[must_use]
    pub fn sessions(&self) -> &'a SessionSet {
        self.oracle.sessions()
    }

    /// The minimum overlay spanning tree of session `i` under the current
    /// lengths, via the epoch-aware oracle path. Counts one `mst_op`.
    pub fn min_tree(&mut self, i: usize) -> OverlayTree {
        self.flush_pending();
        self.state.mst_ops += 1;
        stats::ENGINE_ORACLE_CALLS.inc();
        self.advance_pending = true;
        self.oracle.min_tree_view(
            i,
            LengthView::with_epochs(self.state.lengths.stored(), &self.state.epochs),
        )
    }

    /// One oracle sweep: the minimum trees of `session_ids`, in order, all
    /// under the current lengths, issued as a single batched
    /// [`TreeOracle::min_trees_view`] query so the oracle can recompute
    /// stale member fans across sessions in shared Dijkstra lanes. Counts
    /// one `mst_op` per session; results and cache accounting are
    /// identical to calling [`Self::min_tree`] per id.
    pub fn min_trees(&mut self, session_ids: &[usize]) -> Vec<OverlayTree> {
        self.flush_pending();
        self.state.mst_ops += session_ids.len() as u64;
        stats::ENGINE_ORACLE_CALLS.add(session_ids.len() as u64);
        self.advance_pending = true;
        self.oracle.min_trees_view(
            session_ids,
            LengthView::with_epochs(self.state.lengths.stored(), &self.state.epochs),
        )
    }

    /// One oracle sweep over `session_ids` (via the batched
    /// [`Self::min_trees`]), returning the tree of minimum *normalized*
    /// stored length (`norm(i) · length_i`; the first session wins ties)
    /// together with that length. Counts one `mst_op` per session.
    pub fn best_normalized_tree(
        &mut self,
        session_ids: &[usize],
        norm: impl Fn(usize) -> f64,
    ) -> (f64, OverlayTree) {
        let trees = self.min_trees(session_ids);
        let mut best: Option<(f64, OverlayTree)> = None;
        for (&i, tree) in session_ids.iter().zip(trees) {
            let len_stored = tree.length(self.state.lengths.stored()) * norm(i);
            if best.as_ref().is_none_or(|(b, _)| len_stored < *b) {
                best = Some((len_stored, tree));
            }
        }
        best.expect("nonempty session set")
    }

    /// Routes `amount` units on `tree` and grows the lengths of its edges
    /// under the configured [`LengthGrowth`] rule, advancing the epoch
    /// clock and stamping every touched edge. This is the single
    /// length-update implementation shared by all four solvers. Returns
    /// the tree's per-edge multiplicities for policies that need them
    /// (the online post-pass).
    pub fn augment(&mut self, tree: OverlayTree, amount: f64) -> Vec<(EdgeId, u32)> {
        self.state.iterations += 1;
        stats::ENGINE_AUGMENTS.inc();
        // Phase batching: advance the touch clock only on the first
        // augmentation since the last oracle query (see `advance_pending`).
        if self.advance_pending {
            self.state.epochs.advance();
            self.advance_pending = false;
            stats::ENGINE_EPOCH_ADVANCES.inc();
        }
        let mults = tree.edge_multiplicities();
        stats::ENGINE_AUGMENT_EDGES.add(mults.len() as u64);
        self.state.store.add(tree, amount);
        let batched = matches!(self.mode, AugmentMode::Batched);
        for &(e, n) in &mults {
            let cap = self.g.capacity(e);
            // The factor is computed *now*, from state the per-edge path
            // would see at this exact point (loads update immediately;
            // lengths never feed back into factors), so deferring the
            // multiplication cannot change it.
            let factor = match self.growth {
                LengthGrowth::Fptas { eps } => 1.0 + eps * f64::from(n) * amount / cap,
                LengthGrowth::Online { rho } => {
                    let add = f64::from(n) * amount / cap;
                    self.state.load[e.idx()] += add;
                    1.0 + rho * add
                }
            };
            if batched {
                // Touch stamps still land immediately — cache validity
                // accounting is identical in both modes. Only the store
                // write waits for the next read barrier (the finiteness
                // assert moves there with it).
                self.pending.push((e.0, factor));
            } else {
                self.state.lengths.scale_edge(e.idx(), factor);
                if matches!(self.growth, LengthGrowth::Online { .. }) {
                    assert!(
                        self.state.lengths.stored()[e.idx()].is_finite(),
                        "online length overflow; lower rho"
                    );
                }
            }
            self.state.epochs.touch(e.idx());
        }
        mults
    }

    /// Reports a normalized minimum tree length `α` (stored scale); the
    /// engine tracks the best weak-duality bound `min D/α` over the run.
    pub fn observe_alpha(&mut self, alpha_stored: f64) {
        let bound = self.dual_objective_stored() / alpha_stored;
        if bound < self.state.dual_bound {
            self.state.dual_bound = bound;
        }
    }

    /// The dual objective `D = Σ_e c_e·d_e` in stored scale — compare
    /// against [`Self::stored_one`]. A length read, hence `&mut`: it
    /// applies any batched updates first.
    #[must_use]
    pub fn dual_objective_stored(&mut self) -> f64 {
        self.flush_pending();
        let caps =
            self.caps.get_or_init(|| self.g.edge_ids().map(|e| self.g.capacity(e)).collect());
        self.state.lengths.weighted_sum_stored(caps)
    }

    /// Stored image of the constant 1 (the stop-test threshold).
    #[must_use]
    pub fn stored_one(&self) -> f64 {
        self.state.lengths.stored_one()
    }

    /// The live stored lengths (for policies computing tree lengths).
    /// A length read, hence `&mut`: it applies any batched updates first.
    #[must_use]
    pub fn stored_lengths(&mut self) -> &[f64] {
        self.flush_pending();
        self.state.lengths.stored()
    }

    /// `mst_ops` so far.
    #[must_use]
    pub fn mst_ops(&self) -> u64 {
        self.state.mst_ops
    }

    /// Augmentations so far.
    #[must_use]
    pub fn iterations(&self) -> u64 {
        self.state.iterations
    }

    /// Ends the run, releasing the accumulated state to the policy.
    #[must_use]
    pub fn finish(mut self) -> EngineRun {
        self.flush_pending();
        EngineRun {
            store: self.state.store,
            lengths: self.state.lengths,
            load: self.state.load,
            mst_ops: self.state.mst_ops,
            iterations: self.state.iterations,
            dual_bound: self.state.dual_bound,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omcf_overlay::{FixedIpOracle, Session, SessionSet};
    use omcf_topology::{canned, NodeId};

    fn setup() -> (Graph, SessionSet) {
        let g = canned::grid(3, 3, 10.0);
        let sessions = SessionSet::new(vec![
            Session::new(vec![NodeId(0), NodeId(8)], 1.0),
            Session::new(vec![NodeId(2), NodeId(6)], 1.0),
        ]);
        (g, sessions)
    }

    #[test]
    fn counts_mst_ops_and_iterations() {
        let (g, sessions) = setup();
        let oracle = FixedIpOracle::new(&g, &sessions);
        let lengths = ScaledLengths::raw(&vec![1.0; g.edge_count()]);
        let mut engine = Engine::new(&g, &oracle, lengths, LengthGrowth::Fptas { eps: 0.1 });
        let (len, tree) = engine.best_normalized_tree(&[0, 1], |_| 1.0);
        assert!(len > 0.0);
        assert_eq!(engine.mst_ops(), 2);
        let c = tree.bottleneck(&g);
        engine.augment(tree, c);
        assert_eq!(engine.iterations(), 1);
        let run = engine.finish();
        assert_eq!(run.mst_ops, 2);
        assert!(run.load.iter().all(|l| *l == 0.0), "FPTAS growth does not track load");
    }

    #[test]
    fn online_growth_accumulates_load() {
        let (g, sessions) = setup();
        let oracle = FixedIpOracle::new(&g, &sessions);
        let inv_caps: Vec<f64> = g.edge_ids().map(|e| 1.0 / g.capacity(e)).collect();
        let lengths = ScaledLengths::raw(&inv_caps);
        let mut engine = Engine::new(&g, &oracle, lengths, LengthGrowth::Online { rho: 10.0 });
        let tree = engine.min_tree(0);
        let mults = engine.augment(tree, 5.0);
        assert!(!mults.is_empty());
        let run = engine.finish();
        let loaded: Vec<f64> = run.load.iter().copied().filter(|l| *l > 0.0).collect();
        assert_eq!(loaded.len(), mults.len());
        // 2-member session on unit-multiplicity edges: load = dem/cap.
        assert!(loaded.iter().all(|l| (*l - 0.5).abs() < 1e-12));
    }

    #[test]
    fn length_growth_invalidates_only_touched_routes() {
        let g = canned::grid(3, 3, 10.0);
        // Edge-disjoint single-hop sessions: augmenting one can never
        // invalidate the other's cached tree.
        let sessions = SessionSet::new(vec![
            Session::new(vec![NodeId(0), NodeId(1)], 1.0),
            Session::new(vec![NodeId(7), NodeId(8)], 1.0),
        ]);
        let oracle = FixedIpOracle::new(&g, &sessions);
        let lengths = ScaledLengths::raw(&vec![1.0; g.edge_count()]);
        let mut engine = Engine::new(&g, &oracle, lengths, LengthGrowth::Fptas { eps: 0.5 });
        // Prime both sessions' caches, then augment only session 0's tree.
        let t0 = engine.min_tree(0);
        let _t1 = engine.min_tree(1);
        engine.augment(t0, 1.0);
        let _ = engine.min_tree(0);
        let _ = engine.min_tree(1);
        let stats = oracle.cache_stats();
        // Session 1's second query is the only hit: its own first query and
        // both of session 0's (initial, then invalidated) must recompute.
        assert_eq!((stats.hits, stats.misses), (1, 3), "unexpected cache behavior: {stats:?}");
    }

    #[test]
    fn suspend_resume_carries_all_state() {
        let (g, sessions) = setup();
        let oracle = FixedIpOracle::new(&g, &sessions);
        let inv_caps: Vec<f64> = g.edge_ids().map(|e| 1.0 / g.capacity(e)).collect();
        let mut engine = Engine::new(
            &g,
            &oracle,
            ScaledLengths::raw(&inv_caps),
            LengthGrowth::Online { rho: 10.0 },
        );
        let tree = engine.min_tree(0);
        engine.augment(tree, 1.0);
        let lengths_before = engine.stored_lengths().to_vec();

        // Detach, re-attach (fresh oracle, as a runtime would), continue.
        let state = engine.suspend();
        let oracle2 = FixedIpOracle::new(&g, &sessions);
        let mut engine = Engine::resume(&g, &oracle2, LengthGrowth::Online { rho: 10.0 }, state);
        assert_eq!(engine.stored_lengths(), lengths_before.as_slice());
        assert_eq!(engine.mst_ops(), 1);
        assert_eq!(engine.iterations(), 1);
        let tree = engine.min_tree(1);
        engine.augment(tree, 1.0);
        let run = engine.finish();
        assert_eq!(run.mst_ops, 2);
        assert_eq!(run.iterations, 2);
        assert!(run.load.iter().any(|l| *l > 0.0));
    }

    #[test]
    fn rollback_restores_counterfactual_state_bit_exactly() {
        // Three single-hop contributions on disjoint edges plus one
        // overlapping one; rolling the overlapper back must leave every
        // edge bit-identical to a state that only admitted the survivors.
        let g = canned::grid(3, 3, 10.0);
        let rho = 25.0;
        let session =
            |a: u32, b: u32| SessionSet::new(vec![Session::new(vec![NodeId(a), NodeId(b)], 1.0)]);
        let arrivals = [session(0, 1), session(0, 1), session(3, 4), session(7, 8)];

        let admit = |state: EngineState, set: &SessionSet, slot: usize| {
            let oracle = FixedIpOracle::new(&g, set);
            let mut engine = Engine::resume(&g, &oracle, LengthGrowth::Online { rho }, state);
            let mut tree = engine.min_tree(0);
            tree.session = slot;
            let edges = engine.augment(tree, 1.0);
            (engine.suspend(), Contribution { edges, amount: 1.0 })
        };

        let mut state = EngineState::online(&g);
        let mut contribs = Vec::new();
        for (slot, set) in arrivals.iter().enumerate() {
            state.store.push_session();
            let (next, c) = admit(state, set, slot);
            state = next;
            contribs.push(c);
        }
        // Roll back arrival 1 (shares its edge with arrival 0).
        let survivors: Vec<&Contribution> = [0usize, 2, 3].iter().map(|&i| &contribs[i]).collect();
        state.rollback(&g, rho, 1, &contribs[1], &survivors);
        assert_eq!(state.store.tree_count(1), 0);
        assert_eq!(state.store.tree_count(0), 1, "survivor flow untouched");

        // Counterfactual run that never admitted arrival 1.
        let mut fresh = EngineState::online(&g);
        for (slot, i) in [0usize, 2, 3].into_iter().enumerate() {
            fresh.store.push_session();
            let (next, _) = admit(fresh, &arrivals[i], slot);
            fresh = next;
        }
        for (a, b) in state.lengths.stored().iter().zip(fresh.lengths.stored()) {
            assert_eq!(a.to_bits(), b.to_bits(), "length not rolled back exactly");
        }
        for (a, b) in state.load.iter().zip(&fresh.load) {
            assert_eq!(a.to_bits(), b.to_bits(), "load not rolled back exactly");
        }
    }

    #[test]
    fn replay_edge_matches_incremental_fold() {
        let adds = [0.25, 0.5, 0.125];
        let rho = 30.0;
        let (mut load, mut len) = (0.0f64, 0.01f64);
        for &a in &adds {
            load += a;
            len *= 1.0 + rho * a;
        }
        let (rl, rlen) = replay_edge(0.01, rho, adds.iter().copied());
        assert_eq!(load.to_bits(), rl.to_bits());
        assert_eq!(len.to_bits(), rlen.to_bits());
    }

    #[test]
    fn observe_alpha_tracks_best_bound() {
        let (g, sessions) = setup();
        let oracle = FixedIpOracle::new(&g, &sessions);
        let lengths = ScaledLengths::raw(&vec![1.0; g.edge_count()]);
        let mut engine = Engine::new(&g, &oracle, lengths, LengthGrowth::Fptas { eps: 0.1 });
        engine.observe_alpha(2.0);
        let first = engine.dual_objective_stored() / 2.0;
        engine.observe_alpha(1.0); // worse (larger) bound: ignored
        let run = engine.finish();
        assert!((run.dual_bound - first).abs() < 1e-12);
    }
}
