//! Fleischer's improvement to the `MaxFlow` FPTAS.
//!
//! Table I recomputes the minimum overlay spanning tree of **every**
//! session in every iteration — `k` oracle calls per augmentation — to
//! find the globally shortest tree. Fleischer (the paper's reference \[12\]) observed that it
//! suffices to work against a *lower bound* `α̂` on the global minimum:
//! keep augmenting within one session while its tree's normalized length
//! stays below `(1+ε)·α̂`, move on when it does not, and raise
//! `α̂ ← (1+ε)·α̂` once a full sweep over the sessions routes nothing.
//! Augmentations then cost one oracle call each (plus `k` calls per α̂
//! phase), instead of `k` per augmentation — a large saving whenever the
//! instance does many augmentations per phase (many covered edges).
//! The price is an extra `(1+ε)` factor in the guarantee.
//!
//! Feasibility scaling uses the *measured* divisor
//! `max_e log_{1+ε}(d_e^final/δ)` — each time a capacity's worth of flow
//! crosses `e`, `d_e` grows by at least `(1+ε)` (Lemma 2's argument), so
//! this scaling is always feasible and never looser than the analytic
//! bound; feasibility is asserted after scaling.

use crate::engine::{Engine, LengthGrowth};
use crate::lengths::ScaledLengths;
use crate::m1::MaxFlowOutcome;
use crate::ratio::{ln_delta_m1, ApproxParams};
use crate::solution::summarize;
use omcf_overlay::TreeOracle;
use omcf_topology::Graph;

/// Fleischer policy over the [`Engine`]: maintain a lower bound `α̂` on
/// the global minimum normalized tree length; augment within one session
/// while its tree stays below `(1+ε)·α̂`, bump `α̂` when a full sweep
/// routes nothing.
struct AlphaHatSchedule {
    k: usize,
    smax: usize,
    eps: f64,
}

impl AlphaHatSchedule {
    fn norm(&self, receivers: usize) -> f64 {
        (self.smax as f64 - 1.0) / (receivers as f64)
    }

    fn drive<O: TreeOracle + ?Sized>(&self, g: &Graph, engine: &mut Engine<'_, O>) {
        let sessions = engine.sessions();
        let all: Vec<usize> = (0..self.k).collect();
        let norm = |i: usize| self.norm(sessions.session(i).receivers());

        // Initialize α̂ at the true global minimum (one sweep).
        let (mut alpha_hat, _) = engine.best_normalized_tree(&all, norm);
        let stored_one = engine.stored_one();
        engine.observe_alpha(alpha_hat);

        while alpha_hat < stored_one {
            let target = alpha_hat * (1.0 + self.eps);
            for i in 0..self.k {
                loop {
                    let tree = engine.min_tree(i);
                    let len = tree.length(engine.stored_lengths()) * norm(i);
                    if len > target || len >= stored_one {
                        break;
                    }
                    let c = tree.bottleneck(g);
                    engine.augment(tree, c);
                }
            }
            // Lengths only grow, so once session i's minimum exceeded
            // `target` at its turn it still does at the end of the sweep —
            // the global minimum is now above `target` and the bump is
            // always sound.
            alpha_hat = target;
        }

        // One static sweep for an exact weak-duality witness: lengths are
        // final, so the minimum normalized tree length is the true α and
        // D1/α ≥ OPT.
        let (final_min, _) = engine.best_normalized_tree(&all, norm);
        engine.observe_alpha(final_min);
    }
}

/// Runs the Fleischer-style `MaxFlow` over all sessions of the oracle.
/// Produces the same kind of outcome as [`crate::m1::max_flow`], typically
/// with far fewer MST operations at equal accuracy on non-trivial
/// instances.
#[must_use]
pub fn max_flow_fleischer<O: TreeOracle + ?Sized>(
    g: &Graph,
    oracle: &O,
    params: ApproxParams,
) -> MaxFlowOutcome {
    let sessions = oracle.sessions();
    let k = sessions.len();
    let eps = params.eps;
    let smax = sessions.max_size();
    assert!(smax >= 2);
    let u = oracle.max_route_hops().max(1);
    let ln_delta = ln_delta_m1(eps, smax, u);
    let ln_top = ((1.0 + eps) * (1.0 + eps) * (smax as f64 - 1.0) * u as f64).ln() + 2.0;
    let lengths = ScaledLengths::new(&vec![1.0; g.edge_count()], ln_delta, ln_top);

    let policy = AlphaHatSchedule { k, smax, eps };
    let mut engine = Engine::new(g, oracle, lengths, LengthGrowth::Fptas { eps });
    policy.drive(g, &mut engine);
    let run = engine.finish();

    // Measured feasibility divisor (≥ 1 by construction): each time a
    // capacity's worth of flow crosses `e`, `d_e` grows by ≥ (1+ε).
    let log1p = (1.0 + eps).ln();
    let divisor = g
        .edge_ids()
        .map(|e| (run.lengths.ln_true(e.idx()) - ln_delta) / log1p)
        .fold(1.0f64, f64::max);
    let mut store = run.store;
    store.scale_all(1.0 / divisor);
    store.assert_feasible(g, 1e-9);

    let summary = summarize(&store, sessions, g);
    let objective: f64 = (0..k)
        .map(|i| summary.session_rates[i] / policy.norm(sessions.session(i).receivers()))
        .sum();
    MaxFlowOutcome {
        store,
        summary,
        objective,
        dual_bound: run.dual_bound,
        mst_ops: run.mst_ops,
        iterations: run.iterations,
        eps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::m1::max_flow;
    use omcf_overlay::{DynamicOracle, FixedIpOracle, Session, SessionSet};
    use omcf_topology::{canned, NodeId};

    fn grid_setup() -> (Graph, SessionSet) {
        let g = canned::grid(4, 4, 50.0);
        let sessions = SessionSet::new(vec![
            Session::new(vec![NodeId(0), NodeId(5), NodeId(15)], 1.0),
            Session::new(vec![NodeId(3), NodeId(12)], 1.0),
            Session::new(vec![NodeId(1), NodeId(14), NodeId(7)], 1.0),
        ]);
        (g, sessions)
    }

    #[test]
    fn matches_table_i_objective() {
        let (g, sessions) = grid_setup();
        let oracle = FixedIpOracle::new(&g, &sessions);
        let base = max_flow(&g, &oracle, ApproxParams::for_m1(0.9));
        let fle = max_flow_fleischer(&g, &oracle, ApproxParams::for_m1(0.9));
        fle.store.assert_feasible(&g, 1e-9);
        assert!(
            fle.objective >= base.objective * 0.93,
            "fleischer {} vs table-I {}",
            fle.objective,
            base.objective
        );
        assert!(
            fle.objective <= fle.dual_bound * (1.0 + 1e-9),
            "objective {} above dual bound {}",
            fle.objective,
            fle.dual_bound
        );
    }

    #[test]
    fn saves_oracle_calls_on_wide_instances() {
        // Fleischer's amortization wins when many augmentations happen per
        // α̂ phase — i.e., many covered edges and several sessions.
        let g = canned::grid(6, 6, 20.0);
        let sessions = SessionSet::new(vec![
            Session::new(vec![NodeId(0), NodeId(7), NodeId(14), NodeId(21)], 1.0),
            Session::new(vec![NodeId(5), NodeId(10), NodeId(30)], 1.0),
            Session::new(vec![NodeId(35), NodeId(22), NodeId(3)], 1.0),
            Session::new(vec![NodeId(2), NodeId(33)], 1.0),
            Session::new(vec![NodeId(6), NodeId(29), NodeId(17)], 1.0),
        ]);
        let oracle = FixedIpOracle::new(&g, &sessions);
        let base = max_flow(&g, &oracle, ApproxParams::for_m1(0.9));
        let fle = max_flow_fleischer(&g, &oracle, ApproxParams::for_m1(0.9));
        assert!(
            (fle.mst_ops as f64) < 0.8 * base.mst_ops as f64,
            "fleischer {} ops vs table-I {} ops",
            fle.mst_ops,
            base.mst_ops
        );
        assert!(fle.objective >= base.objective * 0.9);
    }

    #[test]
    fn saturates_theta_like_table_i() {
        let g = canned::theta(5.0);
        let sessions = SessionSet::new(vec![Session::new(vec![NodeId(0), NodeId(4)], 1.0)]);
        let oracle = DynamicOracle::new(&g, &sessions);
        let out = max_flow_fleischer(&g, &oracle, ApproxParams::for_m1(0.92));
        assert!(
            out.summary.session_rates[0] >= 0.9 * 15.0,
            "rate {}",
            out.summary.session_rates[0]
        );
        assert!(out.summary.session_rates[0] <= 15.0 + 1e-9);
    }

    #[test]
    fn deterministic() {
        let (g, sessions) = grid_setup();
        let oracle = FixedIpOracle::new(&g, &sessions);
        let a = max_flow_fleischer(&g, &oracle, ApproxParams::for_m1(0.91));
        let b = max_flow_fleischer(&g, &oracle, ApproxParams::for_m1(0.91));
        assert_eq!(a.summary.session_rates, b.summary.session_rates);
        assert_eq!(a.mst_ops, b.mst_ops);
    }
}
