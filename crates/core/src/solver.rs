//! The workload front door: `Instance`, the object-safe [`Solver`] trait,
//! and thin adapters exposing all four of the paper's algorithms behind it.
//!
//! PR 2 unified the solvers' *inner* loop (one length-update engine, four
//! policies). This module unifies their *outer* interface: an [`Instance`]
//! bundles everything that defines one solvable problem — physical graph,
//! session set, routing regime, approximation/step parameters, and an
//! optional churn trace — and a [`Solver`] turns an instance plus an
//! oracle into one [`SolverOutcome`] with a schema shared by all four
//! algorithms. Drivers (the scenario registry and sweep in `omcf-sim`,
//! benches, examples) enumerate [`SolverKind::ALL`] instead of
//! hard-coding four call sites.
//!
//! ```
//! use omcf_core::solver::{Instance, RoutingMode, SolverKind};
//! use omcf_overlay::{Session, SessionSet};
//! use omcf_topology::{canned, NodeId};
//!
//! let g = canned::theta(10.0);
//! let sessions = SessionSet::new(vec![Session::new(vec![NodeId(0), NodeId(4)], 1.0)]);
//! let inst = Instance::new("theta", g, sessions, RoutingMode::Arbitrary);
//! for kind in SolverKind::ALL {
//!     let out = kind.solver().run(&inst);
//!     assert!(out.summary.overall_throughput > 0.0, "{kind:?} routed nothing");
//! }
//! ```

use crate::dynamics::{JoinRouting, OnlineSystem};
use crate::m1::max_flow;
use crate::m1_fleischer::max_flow_fleischer;
use crate::online::online_min_congestion;
use crate::ratio::ApproxParams;
use crate::residual::max_concurrent_flow_maxmin;
use crate::solution::{summarize, FlowSummary};
use omcf_overlay::{
    ChurnEvent, ChurnSchedule, DynamicOracle, FixedIpOracle, SessionSet, TreeOracle, TreeStore,
};
use omcf_routing::WorkspacePool;
use omcf_topology::Graph;
use std::sync::Arc;

/// The paper's two routing regimes (§II vs §V), as instance data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutingMode {
    /// Frozen IP shortest-path routes (§II–IV).
    FixedIp,
    /// Arbitrary dynamic unicast routing (§V).
    Arbitrary,
}

impl RoutingMode {
    /// Stable lowercase label (used in result schemas).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::FixedIp => "fixed-ip",
            Self::Arbitrary => "arbitrary",
        }
    }
}

impl From<RoutingMode> for JoinRouting {
    fn from(m: RoutingMode) -> Self {
        match m {
            RoutingMode::FixedIp => JoinRouting::FixedIp,
            RoutingMode::Arbitrary => JoinRouting::Arbitrary,
        }
    }
}

/// One solvable problem: graph, sessions (with demands), routing regime
/// and solver parameters, plus an optional churn trace for the online
/// algorithm. Static solvers always see [`Self::sessions`]; when the
/// instance was built [`Self::with_churn`], that set is the trace's
/// surviving population, so every solver answers for the same final state
/// while the online algorithm additionally pays the path-dependent cost of
/// getting there.
#[derive(Clone, Debug)]
pub struct Instance {
    /// Display name (scenario registry key plus seed, typically).
    pub name: String,
    /// The physical topology (shared: cloning an instance — e.g. to vary ε
    /// across a ratio sweep — bumps a refcount, not the graph).
    pub graph: Arc<Graph>,
    /// The competing sessions, demands included (shared like the graph).
    pub sessions: Arc<SessionSet>,
    /// Routing regime the oracle enforces.
    pub routing: RoutingMode,
    /// FPTAS approximation ε (the experiment convention `ε = 1 − ratio`).
    pub eps: f64,
    /// Online step size ρ.
    pub rho: f64,
    /// Optional join/leave trace replayed by the online solver.
    pub churn: Option<ChurnSchedule>,
}

impl Instance {
    /// A static instance with the default parameters (ε = 0.1, ρ = 10).
    /// Accepts owned or already-shared graph/session values.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        graph: impl Into<Arc<Graph>>,
        sessions: impl Into<Arc<SessionSet>>,
        routing: RoutingMode,
    ) -> Self {
        Self {
            name: name.into(),
            graph: graph.into(),
            sessions: sessions.into(),
            routing,
            eps: 0.1,
            rho: 10.0,
            churn: None,
        }
    }

    /// Sets the FPTAS ε.
    #[must_use]
    pub fn with_eps(mut self, eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps out of (0, 1)");
        self.eps = eps;
        self
    }

    /// Sets the online step size ρ.
    #[must_use]
    pub fn with_rho(mut self, rho: f64) -> Self {
        assert!(rho > 0.0 && rho.is_finite(), "rho must be positive");
        self.rho = rho;
        self
    }

    /// Attaches a churn trace; the instance's static session set becomes
    /// the trace's surviving population.
    #[must_use]
    pub fn with_churn(mut self, churn: ChurnSchedule) -> Self {
        self.sessions = Arc::new(churn.survivors());
        self.churn = Some(churn);
        self
    }

    /// The approximation parameters solvers derive from [`Self::eps`].
    #[must_use]
    pub fn params(&self) -> ApproxParams {
        ApproxParams::from_eps(self.eps)
    }

    /// Builds the oracle matching the instance's routing regime.
    #[must_use]
    pub fn oracle(&self) -> Box<dyn TreeOracle + Send + Sync> {
        match self.routing {
            RoutingMode::FixedIp => Box::new(FixedIpOracle::new(&self.graph, &self.sessions)),
            RoutingMode::Arbitrary => Box::new(DynamicOracle::new(&self.graph, &self.sessions)),
        }
    }

    /// Like [`Self::oracle`], but a dynamic-routing oracle leases its
    /// Dijkstra workspaces from `pool` (fixed-IP oracles have no
    /// workspaces to lease and ignore the pool).
    #[must_use]
    pub fn oracle_pooled(&self, pool: &Arc<WorkspacePool>) -> Box<dyn TreeOracle + Send + Sync> {
        match self.routing {
            RoutingMode::FixedIp => Box::new(FixedIpOracle::new(&self.graph, &self.sessions)),
            RoutingMode::Arbitrary => {
                Box::new(DynamicOracle::with_pool(&self.graph, &self.sessions, Arc::clone(pool)))
            }
        }
    }
}

/// The four algorithms, as enumerable data.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SolverKind {
    /// Table I `MaxFlow` FPTAS.
    M1,
    /// Fleischer-style `MaxFlow` (fewer oracle calls, extra (1+ε) slack).
    M1Fleischer,
    /// Table III `MaxConcurrentFlow`, max-min completed (Table IV semantics).
    M2,
    /// Table VI `Online-MinCongestion` (replays the churn trace if present).
    Online,
}

impl SolverKind {
    /// Every solver, in the paper's presentation order.
    pub const ALL: [SolverKind; 4] =
        [SolverKind::M1, SolverKind::M1Fleischer, SolverKind::M2, SolverKind::Online];

    /// Stable lowercase name (used in result schemas and CLIs).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::M1 => "m1",
            Self::M1Fleischer => "m1-fleischer",
            Self::M2 => "m2",
            Self::Online => "online",
        }
    }

    /// Parses [`Self::name`] back, ignoring ASCII case and surrounding
    /// whitespace (`"M1"`, `" Online "` and `"m1-Fleischer"` all parse).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        Self::ALL.into_iter().find(|k| k.name().eq_ignore_ascii_case(s))
    }

    /// The valid solver names, comma-separated — CLI error paths quote
    /// this so a typo tells the user what would have parsed.
    #[must_use]
    pub fn name_list() -> String {
        Self::ALL.map(Self::name).join(", ")
    }

    /// The shared adapter implementing this kind.
    #[must_use]
    pub fn solver(self) -> &'static dyn Solver {
        match self {
            Self::M1 => &M1Solver,
            Self::M1Fleischer => &FleischerSolver,
            Self::M2 => &M2Solver,
            Self::Online => &OnlineSolver,
        }
    }
}

/// The unified result schema every solver fills.
///
/// `objective` is the solver's own headline number: the receiver-weighted
/// M1 objective for the `MaxFlow` family, the concurrent throughput
/// `f* = min_i rate_i/dem(i)` for M2, and the minimum demand-normalized
/// rate for the online algorithm. `iterations` counts augmentations for
/// the M1 family and the online algorithm, and phases for M2.
#[derive(Clone, Debug)]
pub struct SolverOutcome {
    /// Which solver produced this.
    pub solver: SolverKind,
    /// The feasible scaled flow.
    pub store: TreeStore,
    /// Rates, throughput, tree counts, congestion.
    pub summary: FlowSummary,
    /// Solver-specific headline objective (see type docs).
    pub objective: f64,
    /// Weak-duality bound, where the solver produces one (M1 family).
    pub dual_bound: Option<f64>,
    /// Oracle calls in the main loop — the paper's running-time unit.
    pub mst_ops: u64,
    /// Oracle calls spent in the M2 λ-pre-pass (0 elsewhere).
    pub mst_ops_prepass: u64,
    /// Augmentations (M1 family, online) or phases (M2).
    pub iterations: u64,
}

impl SolverOutcome {
    /// Smallest per-session rate (0 if any session routed nothing).
    #[must_use]
    pub fn min_rate(&self) -> f64 {
        self.summary.session_rates.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// An algorithm that solves [`Instance`]s. Object-safe: drivers hold
/// `&dyn Solver` / iterate [`SolverKind::ALL`].
pub trait Solver: Send + Sync {
    /// Which [`SolverKind`] this is.
    fn kind(&self) -> SolverKind;

    /// Stable name, mirroring [`SolverKind::name`].
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Solves `inst` through `oracle`. The oracle must serve
    /// `inst.sessions` (as [`Instance::oracle`] guarantees); passing it
    /// explicitly lets drivers control caching/pooling and share one
    /// oracle across parameter sweeps.
    fn solve(&self, inst: &Instance, oracle: &dyn TreeOracle) -> SolverOutcome;

    /// Convenience: builds the instance's default oracle and solves.
    fn run(&self, inst: &Instance) -> SolverOutcome {
        self.solve(inst, inst.oracle().as_ref())
    }
}

/// Table I `MaxFlow` adapter.
pub struct M1Solver;

impl Solver for M1Solver {
    fn kind(&self) -> SolverKind {
        SolverKind::M1
    }

    fn solve(&self, inst: &Instance, oracle: &dyn TreeOracle) -> SolverOutcome {
        let _span = omcf_telemetry::span("solve.m1");
        let out = max_flow(&inst.graph, oracle, inst.params());
        SolverOutcome {
            solver: self.kind(),
            store: out.store,
            summary: out.summary,
            objective: out.objective,
            dual_bound: Some(out.dual_bound),
            mst_ops: out.mst_ops,
            mst_ops_prepass: 0,
            iterations: out.iterations,
        }
    }
}

/// Fleischer `MaxFlow` adapter.
pub struct FleischerSolver;

impl Solver for FleischerSolver {
    fn kind(&self) -> SolverKind {
        SolverKind::M1Fleischer
    }

    fn solve(&self, inst: &Instance, oracle: &dyn TreeOracle) -> SolverOutcome {
        let _span = omcf_telemetry::span("solve.fleischer");
        let out = max_flow_fleischer(&inst.graph, oracle, inst.params());
        SolverOutcome {
            solver: self.kind(),
            store: out.store,
            summary: out.summary,
            objective: out.objective,
            dual_bound: Some(out.dual_bound),
            mst_ops: out.mst_ops,
            mst_ops_prepass: 0,
            iterations: out.iterations,
        }
    }
}

/// Max-min completed `MaxConcurrentFlow` adapter (Table IV semantics).
pub struct M2Solver;

impl Solver for M2Solver {
    fn kind(&self) -> SolverKind {
        SolverKind::M2
    }

    fn solve(&self, inst: &Instance, oracle: &dyn TreeOracle) -> SolverOutcome {
        let _span = omcf_telemetry::span("solve.m2");
        let out = max_concurrent_flow_maxmin(&inst.graph, oracle, inst.params());
        SolverOutcome {
            solver: self.kind(),
            store: out.store,
            summary: out.summary,
            objective: out.throughput,
            dual_bound: None,
            mst_ops: out.mst_ops_main,
            mst_ops_prepass: out.mst_ops_prepass,
            iterations: out.phases,
        }
    }
}

/// `Online-MinCongestion` adapter. On a static instance, sessions arrive
/// in index order; on a churn instance, the full join/leave trace is
/// replayed through [`OnlineSystem`] and the outcome reports the
/// surviving population's end state (Table VI scaling: rate `dem/l_max`).
pub struct OnlineSolver;

impl Solver for OnlineSolver {
    fn kind(&self) -> SolverKind {
        SolverKind::Online
    }

    /// Overridden to skip oracle construction entirely on churn
    /// instances — the trace replay builds its own per-join oracles and
    /// never touches a shared one.
    fn run(&self, inst: &Instance) -> SolverOutcome {
        match &inst.churn {
            Some(churn) => solve_churn(inst, churn),
            None => self.solve(inst, inst.oracle().as_ref()),
        }
    }

    fn solve(&self, inst: &Instance, oracle: &dyn TreeOracle) -> SolverOutcome {
        if let Some(churn) = &inst.churn {
            return solve_churn(inst, churn);
        }
        let _span = omcf_telemetry::span("solve.online");
        let out = online_min_congestion(&inst.graph, oracle, inst.rho);
        let summary = summarize(&out.store, &inst.sessions, &inst.graph);
        let objective = summary
            .session_rates
            .iter()
            .zip(inst.sessions.sessions())
            .map(|(r, s)| r / s.demand)
            .fold(f64::INFINITY, f64::min);
        SolverOutcome {
            solver: self.kind(),
            store: out.store,
            summary,
            objective,
            dual_bound: None,
            mst_ops: out.mst_ops,
            mst_ops_prepass: 0,
            iterations: out.mst_ops,
        }
    }
}

/// Replays a churn trace and summarizes the survivors' end state.
fn solve_churn(inst: &Instance, churn: &ChurnSchedule) -> SolverOutcome {
    let mut sys = OnlineSystem::new(&inst.graph, inst.rho, inst.routing.into());
    let mut ids = Vec::with_capacity(churn.join_count());
    for ev in churn.events() {
        match ev {
            ChurnEvent::Join(s) => ids.push(sys.join(s.clone())),
            ChurnEvent::Leave(i) => {
                let left = sys.leave(ids[*i]);
                debug_assert!(left, "validated schedule: session must be live");
            }
        }
    }
    // Table VI scaling against the live end-state loads: rate = dem/l_max.
    let rates: std::collections::HashMap<_, _> = sys.saturating_rates().into_iter().collect();
    let survivors = churn.survivor_joins();
    let mut store = TreeStore::new(survivors.len());
    for (slot, &join_idx) in survivors.iter().enumerate() {
        let id = ids[join_idx];
        let mut tree = sys.tree_of(id).expect("survivor is live").clone();
        tree.session = slot;
        store.add(tree, rates[&id]);
    }
    store.assert_feasible(&inst.graph, 1e-9);
    let summary = summarize(&store, &inst.sessions, &inst.graph);
    let objective = summary
        .session_rates
        .iter()
        .zip(inst.sessions.sessions())
        .map(|(r, s)| r / s.demand)
        .fold(f64::INFINITY, f64::min);
    SolverOutcome {
        solver: SolverKind::Online,
        store,
        summary,
        objective,
        dual_bound: None,
        mst_ops: churn.join_count() as u64,
        mst_ops_prepass: 0,
        iterations: churn.events().len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omcf_numerics::Xoshiro256pp;
    use omcf_overlay::{random_churn, Session};
    use omcf_topology::{canned, NodeId};

    fn grid_instance(routing: RoutingMode) -> Instance {
        let g = canned::grid(4, 4, 50.0);
        let sessions = SessionSet::new(vec![
            Session::new(vec![NodeId(0), NodeId(5), NodeId(15)], 1.0),
            Session::new(vec![NodeId(3), NodeId(12)], 1.0),
        ]);
        Instance::new("grid", g, sessions, routing)
    }

    #[test]
    fn all_kinds_have_distinct_parsable_names() {
        for kind in SolverKind::ALL {
            assert_eq!(SolverKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.solver().kind(), kind);
        }
        assert_eq!(SolverKind::parse("nope"), None);
    }

    #[test]
    fn parse_ignores_case_and_whitespace() {
        assert_eq!(SolverKind::parse("M1"), Some(SolverKind::M1));
        assert_eq!(SolverKind::parse("  Online "), Some(SolverKind::Online));
        assert_eq!(SolverKind::parse("M1-Fleischer"), Some(SolverKind::M1Fleischer));
        assert_eq!(SolverKind::parse("m 1"), None, "inner whitespace is not a name");
        let names = SolverKind::name_list();
        for kind in SolverKind::ALL {
            assert!(names.contains(kind.name()), "{names} missing {}", kind.name());
        }
    }

    #[test]
    fn adapters_match_direct_calls() {
        let inst = grid_instance(RoutingMode::FixedIp);
        let oracle = inst.oracle();
        let direct = max_flow(&inst.graph, oracle.as_ref(), inst.params());
        let via_trait = SolverKind::M1.solver().solve(&inst, oracle.as_ref());
        assert_eq!(direct.summary.session_rates, via_trait.summary.session_rates);
        assert_eq!(direct.mst_ops, via_trait.mst_ops);
        assert_eq!(via_trait.dual_bound, Some(direct.dual_bound));
    }

    #[test]
    fn every_solver_produces_feasible_flow_on_both_routings() {
        for routing in [RoutingMode::FixedIp, RoutingMode::Arbitrary] {
            let inst = grid_instance(routing);
            for kind in SolverKind::ALL {
                let out = kind.solver().run(&inst);
                out.store.assert_feasible(&inst.graph, 1e-6);
                assert!(
                    out.summary.overall_throughput > 0.0,
                    "{kind:?}/{} routed nothing",
                    routing.label()
                );
                assert!(out.mst_ops > 0);
                assert_eq!(out.summary.session_rates.len(), inst.sessions.len());
            }
        }
    }

    #[test]
    fn m2_reports_prepass_and_min_rate() {
        let inst = grid_instance(RoutingMode::FixedIp);
        let out = SolverKind::M2.solver().run(&inst);
        assert!(out.mst_ops_prepass > 0, "λ pre-pass must be accounted");
        assert!(out.min_rate() > 0.0);
        assert!(out.min_rate() <= out.summary.session_rates[0] + 1e-12);
    }

    #[test]
    fn churn_instance_replays_trace_and_reports_survivors() {
        let g = canned::grid(5, 5, 10.0);
        let mut rng = Xoshiro256pp::new(42);
        let churn = random_churn(&g, 10, 3, 1.0, 0.4, &mut rng);
        let survivors = churn.survivors().len();
        assert!(survivors < 10, "seed 42 must produce at least one leave");
        let inst = Instance::new("churn", g, churn.survivors(), RoutingMode::FixedIp)
            .with_churn(churn)
            .with_rho(25.0);
        assert_eq!(inst.sessions.len(), survivors);
        let out = SolverKind::Online.solver().run(&inst);
        assert_eq!(out.summary.session_rates.len(), survivors);
        assert!(out.summary.session_rates.iter().all(|r| *r > 0.0));
        out.store.assert_feasible(&inst.graph, 1e-9);
        // Offline solvers answer for the same surviving population.
        let offline = SolverKind::M1.solver().run(&inst);
        assert_eq!(offline.summary.session_rates.len(), survivors);
    }

    #[test]
    fn pooled_oracle_solves_identically() {
        let inst = grid_instance(RoutingMode::Arbitrary);
        let pool = Arc::new(WorkspacePool::new());
        let pooled = SolverKind::M1.solver().solve(&inst, inst.oracle_pooled(&pool).as_ref());
        let plain = SolverKind::M1.solver().run(&inst);
        assert_eq!(pooled.summary.session_rates, plain.summary.session_rates);
        assert_eq!(pooled.mst_ops, plain.mst_ops);
        assert!(pool.idle_batches() > 0, "batch fan engines must return to the pool");
    }
}
