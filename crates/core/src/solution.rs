//! Common result plumbing shared by the four algorithms.

use omcf_overlay::{SessionSet, TreeStore};
use omcf_topology::Graph;

/// Summary of a feasible multi-tree flow (any algorithm).
#[derive(Clone, Debug)]
pub struct FlowSummary {
    /// Rate of each session `Σ_j f_j^i` after feasibility scaling.
    pub session_rates: Vec<f64>,
    /// Aggregate receiving rate `Σ_i (|S_i|−1) · rate_i` — the paper's
    /// "overall throughput".
    pub overall_throughput: f64,
    /// Distinct trees per session.
    pub tree_counts: Vec<usize>,
    /// Maximum link congestion of the scaled solution (≤ 1 + tolerance).
    pub max_congestion: f64,
}

/// Computes per-session rates from a store.
#[must_use]
pub fn session_rates(store: &TreeStore) -> Vec<f64> {
    (0..store.session_count()).map(|i| store.session_total(i)).collect()
}

/// Builds a [`FlowSummary`] from a scaled, feasible store.
#[must_use]
pub fn summarize(store: &TreeStore, sessions: &SessionSet, g: &Graph) -> FlowSummary {
    let session_rates = session_rates(store);
    let overall_throughput = session_rates
        .iter()
        .enumerate()
        .map(|(i, r)| sessions.session(i).receivers() as f64 * r)
        .sum();
    let tree_counts = (0..store.session_count()).map(|i| store.tree_count(i)).collect();
    FlowSummary {
        session_rates,
        overall_throughput,
        tree_counts,
        max_congestion: store.max_congestion(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omcf_overlay::{FixedIpOracle, Session, TreeOracle};
    use omcf_topology::{canned, NodeId};

    #[test]
    fn summary_weighs_receivers() {
        let g = canned::grid(3, 3, 100.0);
        let sessions = SessionSet::new(vec![
            Session::new(vec![NodeId(0), NodeId(4), NodeId(8)], 1.0), // 2 receivers
            Session::new(vec![NodeId(2), NodeId(6)], 1.0),            // 1 receiver
        ]);
        let oracle = FixedIpOracle::new(&g, &sessions);
        let unit = vec![1.0; g.edge_count()];
        let mut store = TreeStore::new(2);
        store.add(oracle.min_tree(0, &unit), 2.0);
        store.add(oracle.min_tree(1, &unit), 3.0);
        let s = summarize(&store, &sessions, &g);
        assert_eq!(s.session_rates, vec![2.0, 3.0]);
        assert_eq!(s.overall_throughput, 2.0 * 2.0 + 1.0 * 3.0);
        assert_eq!(s.tree_counts, vec![1, 1]);
        assert!(s.max_congestion > 0.0);
    }
}
