//! Property-based tests pinning the batched augment pipeline to the
//! per-edge reference: the [`AugmentMode`] is a pure *when-to-write*
//! choice, never a *what*.
//!
//! In batched mode the engine defers a phase's length-growth factors and
//! applies them in one sweep at the next length read; the per-edge mode
//! writes each factor immediately (the pre-batching behaviour). Growth
//! factors are computed at augment time from state the per-edge path
//! would see (loads update immediately; lengths never feed back into a
//! factor before a read barrier), and the sweep multiplies each edge by
//! exactly the factor the pointwise path would have used — so every
//! artifact must be `to_bits`-identical between the modes, across random
//! instances, all four solvers, both routing regimes, and serial vs.
//! multi-threaded execution. These tests fail on the first bit that
//! moves.

use omcf_core::solver::{Instance, RoutingMode, SolverKind, SolverOutcome};
use omcf_core::{AugmentMode, Engine, LengthGrowth, Parallelism, ScaledLengths};
use omcf_numerics::{Rng64, Xoshiro256pp};
use omcf_overlay::{random_sessions, FixedIpOracle};
use omcf_routing::WorkspacePool;
use omcf_topology::{canned, Graph};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

/// Guards the process-wide augment default: proptest cases within one
/// test run sequentially, but distinct `#[test]` fns in this binary run
/// concurrently, and the A/B below is only meaningful when each leg
/// really executes under the mode it set.
static MODE_LOCK: Mutex<()> = Mutex::new(());

/// A connected random instance: random-dimension grid, two 3-member
/// sessions sampled uniformly, moderate ε so debug-mode solves stay
/// quick without changing the code paths exercised.
fn random_instance(seed: u64, routing: RoutingMode) -> Instance {
    let mut rng = Xoshiro256pp::new(seed);
    let rows = 3 + rng.index(2);
    let cols = 3 + rng.index(3);
    let g = canned::grid(rows, cols, 10.0 + rng.range_f64(0.0, 40.0));
    let sessions = random_sessions(&g, 2, 3, 1.0, &mut rng);
    Instance::new("augment-prop", g, sessions, routing).with_eps(0.5).with_rho(10.0)
}

fn solve_under(inst: &Instance, kind: SolverKind, policy: Parallelism) -> SolverOutcome {
    let pool = Arc::new(WorkspacePool::new().with_parallelism(policy));
    kind.solver().solve(inst, inst.oracle_pooled(&pool).as_ref())
}

fn assert_bit_identical(kind: SolverKind, per_edge: &SolverOutcome, batched: &SolverOutcome) {
    assert_eq!(per_edge.mst_ops, batched.mst_ops, "{kind:?}: oracle call count moved");
    assert_eq!(per_edge.iterations, batched.iterations, "{kind:?}: iteration count moved");
    assert_eq!(
        per_edge.objective.to_bits(),
        batched.objective.to_bits(),
        "{kind:?}: objective bits moved ({} vs {})",
        per_edge.objective,
        batched.objective
    );
    assert_eq!(per_edge.summary.session_rates.len(), batched.summary.session_rates.len());
    for (i, (a, b)) in
        per_edge.summary.session_rates.iter().zip(&batched.summary.session_rates).enumerate()
    {
        assert_eq!(a.to_bits(), b.to_bits(), "{kind:?}: session {i} rate bits moved ({a} vs {b})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Every solver, both routing regimes, serial and 4-thread pools:
    /// flipping the process-wide augment default between the two legs
    /// changes no artifact bit.
    #[test]
    fn augment_mode_bit_invisible_across_solvers(seed in any::<u64>()) {
        let _guard = MODE_LOCK.lock().expect("mode lock");
        for routing in [RoutingMode::FixedIp, RoutingMode::Arbitrary] {
            let inst = random_instance(seed, routing);
            for kind in SolverKind::ALL {
                let threads4 =
                    Parallelism::Threads(std::num::NonZeroUsize::new(4).expect("nonzero"));
                for policy in [Parallelism::Serial, threads4] {
                    AugmentMode::set_process_default(AugmentMode::PerEdge);
                    let per_edge = solve_under(&inst, kind, policy);
                    AugmentMode::set_process_default(AugmentMode::Batched);
                    let batched = solve_under(&inst, kind, policy);
                    assert_bit_identical(kind, &per_edge, &batched);
                }
            }
        }
    }
}

/// Lockstep engine-level A/B: two engines over the same oracle schedule,
/// one per mode, with length reads interleaved at different points —
/// including reads landing mid-batch, which force a flush on the batched
/// engine only. Final stored lengths (the artifact the modes actually
/// reorder writes to) must match bit-for-bit after every read and at the
/// end, for both growth laws.
#[test]
fn engine_final_lengths_bit_identical_across_modes() {
    type InitLengths = fn(&Graph) -> Vec<f64>;
    let g = canned::grid(4, 4, 25.0);
    let mut rng = Xoshiro256pp::new(0xA06);
    let sessions = random_sessions(&g, 2, 3, 1.0, &mut rng);
    let cases: [(LengthGrowth, InitLengths); 2] = [
        (LengthGrowth::Fptas { eps: 0.3 }, |g| vec![1.0; g.edge_count()]),
        (LengthGrowth::Online { rho: 10.0 }, |g| {
            g.edge_ids().map(|e| 1.0 / g.capacity(e)).collect()
        }),
    ];
    for (growth, init) in cases {
        let oracle_a = FixedIpOracle::new(&g, &sessions);
        let oracle_b = FixedIpOracle::new(&g, &sessions);
        let mut a = Engine::new(&g, &oracle_a, ScaledLengths::raw(&init(&g)), growth)
            .with_augment_mode(AugmentMode::PerEdge);
        let mut b = Engine::new(&g, &oracle_b, ScaledLengths::raw(&init(&g)), growth)
            .with_augment_mode(AugmentMode::Batched);
        assert_eq!(a.augment_mode(), AugmentMode::PerEdge);
        assert_eq!(b.augment_mode(), AugmentMode::Batched);
        for round in 0..8u32 {
            let i = (round % 2) as usize;
            let ta = a.min_tree(i);
            let tb = b.min_tree(i);
            assert_eq!(ta.hops, tb.hops, "schedules diverged before augment {round}");
            let amount = ta.bottleneck(&g).min(1.0);
            let ma = a.augment(ta, amount);
            let mb = b.augment(tb, amount);
            assert_eq!(ma, mb, "growth multipliers diverged at augment {round}");
            // Interleave reads: some rounds flush the batched engine
            // immediately, others let the batch span several augments.
            if round % 3 == 0 {
                let la = a.stored_lengths().to_vec();
                assert_eq!(
                    la.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
                    b.stored_lengths().iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
                    "length bits diverged at read after augment {round}"
                );
            }
        }
        let run_a = a.finish();
        let run_b = b.finish();
        assert_eq!(
            run_a.lengths.stored().iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
            run_b.lengths.stored().iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
            "final length bits diverged"
        );
        assert_eq!(
            run_a.load.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
            run_b.load.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
            "final load bits diverged"
        );
    }
}

/// The augment-mode vocabulary round-trips (the `repro --augment` flag
/// leans on this), and unknown names are rejected.
#[test]
fn augment_mode_names_round_trip() {
    for mode in AugmentMode::ALL {
        assert_eq!(AugmentMode::parse(mode.name()), Some(mode));
        assert!(AugmentMode::VOCABULARY.contains(mode.name()));
    }
    assert_eq!(AugmentMode::parse("eager"), None);
}
