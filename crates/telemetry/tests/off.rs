//! Off-mode contract: while telemetry has never been enabled, an
//! instrumented site costs one relaxed load — no registrations and no
//! heap allocations. Lives in its own integration-test binary so no
//! neighbouring test can have enabled telemetry in this process.

use omcf_telemetry::{registered_len, span, Class, Counter, Gauge, Histogram, OwnedCounter};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapped with an allocation counter.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

static OFF_COUNTER: Counter = Counter::new("off.test.counter", Class::Count);
static OFF_GAUGE: Gauge = Gauge::new("off.test.gauge", Class::Wall);
static OFF_HISTOGRAM: Histogram = Histogram::new("off.test.histogram", Class::Wall);

#[test]
fn disabled_sites_register_nothing_and_allocate_nothing() {
    assert!(!omcf_telemetry::enabled(), "this binary must never enable telemetry");
    let owned = OwnedCounter::new(&OFF_COUNTER);

    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..1000 {
        OFF_COUNTER.add(3);
        OFF_GAUGE.set(i);
        OFF_GAUGE.add(1);
        OFF_HISTOGRAM.observe(i as u64);
        owned.inc();
        let _outer = span("off.outer");
        let _inner = span("off.inner");
    }
    let after = ALLOCS.load(Ordering::Relaxed);

    assert_eq!(after - before, 0, "disabled telemetry must not allocate");
    assert_eq!(registered_len(), 0, "disabled telemetry must not register metrics");
    assert_eq!(OFF_COUNTER.value(), 0, "disabled counters must not count");
    assert_eq!(OFF_HISTOGRAM.count(), 0);
    // The owned counter's *local* cell still counts — it replaces the
    // per-instance atomics the oracle caches always carried.
    assert_eq!(owned.get(), 1000);

    let snap = omcf_telemetry::snapshot();
    assert!(snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty());
    assert!(snap.spans.is_empty(), "disabled spans must not record");
}
