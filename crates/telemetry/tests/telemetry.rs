//! Enabled-mode unit coverage for the telemetry substrate itself:
//! counter shard merging, histogram bucketing, span nesting, snapshot
//! determinism, JSON rendering + lint, and reset semantics.
//!
//! Everything here toggles the process-global enable switch, so the
//! tests serialise on one mutex (cargo runs tests in one process,
//! concurrently by default).

use omcf_telemetry as tm;
use std::sync::Mutex;
use tm::{Class, Counter, Gauge, Histogram, OwnedCounter};

static LOCK: Mutex<()> = Mutex::new(());

/// Enable telemetry, reset state, run `f`, disable again.
fn with_telemetry<T>(f: impl FnOnce() -> T) -> T {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    tm::set_enabled(true);
    tm::reset();
    let out = f();
    tm::set_enabled(false);
    out
}

static COUNTER: Counter = Counter::new("test.counter", Class::Count);
static WALL_COUNTER: Counter = Counter::new("test.wall_counter", Class::Wall);
static GAUGE: Gauge = Gauge::new("test.gauge", Class::Wall);
static HISTOGRAM: Histogram = Histogram::new("test.histogram", Class::Count);

#[test]
fn counters_sum_across_worker_shards() {
    with_telemetry(|| {
        use rayon::prelude::*;
        COUNTER.add(5);
        (0..4u32).into_par_iter().for_each(|_| COUNTER.add(10));
        assert_eq!(COUNTER.value(), 45);
        let snap = tm::snapshot();
        let c = snap.counters.iter().find(|c| c.name == "test.counter").unwrap();
        assert_eq!(c.value, 45);
        assert_eq!(c.class, Class::Count);
    });
}

#[test]
fn histogram_buckets_are_log2() {
    assert_eq!(Histogram::bucket_of(0), 0);
    assert_eq!(Histogram::bucket_of(1), 0);
    assert_eq!(Histogram::bucket_of(2), 1);
    assert_eq!(Histogram::bucket_of(3), 1);
    assert_eq!(Histogram::bucket_of(4), 2);
    assert_eq!(Histogram::bucket_of(1023), 9);
    assert_eq!(Histogram::bucket_of(1024), 10);
    assert_eq!(Histogram::bucket_of(u64::MAX), 63);
    with_telemetry(|| {
        for v in [0, 1, 2, 3, 700, 1024] {
            HISTOGRAM.observe(v);
        }
        assert_eq!(HISTOGRAM.count(), 6);
        assert_eq!(HISTOGRAM.sum(), 1730);
        assert_eq!(HISTOGRAM.min(), 0);
        assert_eq!(HISTOGRAM.max(), 1024);
        assert_eq!(HISTOGRAM.buckets(), vec![(0, 2), (1, 2), (9, 1), (10, 1)]);
    });
}

#[test]
fn gauge_tracks_value_and_high_water() {
    with_telemetry(|| {
        GAUGE.set(3);
        GAUGE.add(4);
        GAUGE.add(-6);
        assert_eq!(GAUGE.value(), 1);
        assert_eq!(GAUGE.high_water(), 7);
    });
}

#[test]
fn owned_counter_mirrors_into_global_only_when_enabled() {
    with_telemetry(|| {
        let a = OwnedCounter::new(&WALL_COUNTER);
        let b = OwnedCounter::new(&WALL_COUNTER);
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 2);
        assert_eq!(b.get(), 3);
        assert_eq!(WALL_COUNTER.value(), 5);
        tm::set_enabled(false);
        a.add(7);
        assert_eq!(a.get(), 9, "local cell counts regardless of the switch");
        assert_eq!(WALL_COUNTER.value(), 5, "global mirror is gated");
    });
}

#[test]
fn spans_nest_into_slash_paths_and_merge_sorted() {
    let snap = with_telemetry(|| {
        for _ in 0..3 {
            let _a = tm::span("alpha");
            {
                let _b = tm::span("beta");
            }
            let _c = tm::span("beta");
        }
        tm::snapshot()
    });
    let paths: Vec<(&str, u64)> = snap.spans.iter().map(|s| (s.path.as_str(), s.count)).collect();
    assert_eq!(paths, vec![("alpha", 3), ("alpha/beta", 6)]);
    assert!(snap.spans.iter().all(|s| s.total_ns > 0));
}

#[test]
fn snapshot_renders_sorted_lintable_json() {
    let (snap, rendered) = with_telemetry(|| {
        COUNTER.add(11);
        GAUGE.set(2);
        HISTOGRAM.observe(900);
        let _s = tm::span("render");
        drop(_s);
        let snap = tm::snapshot();
        let rendered = tm::render_profile_json(&snap);
        (snap, rendered)
    });
    let objects = tm::lint_sorted_json(&rendered).expect("profile JSON must lint");
    assert!(objects >= 5, "top-level + one object per section, got {objects}");
    // Round-trip: every sample appears verbatim in the rendered text.
    for c in &snap.counters {
        assert!(rendered.contains(&format!("\"{}\"", c.name)), "missing {}", c.name);
    }
    assert!(rendered.contains("\"schema\": \"omcf-telemetry-v1\""));
    assert!(rendered.contains("\"class\": \"count\", \"value\": 11"));
    assert!(rendered.contains("\"b09\": 1"));
    assert!(tm::lint_sorted_json("{\"b\": 1, \"a\": 2}").is_err(), "unsorted keys must fail");
    assert!(tm::lint_sorted_json("{\"a\": 1, \"a\": 2}").is_err(), "duplicate keys must fail");
    assert!(tm::lint_sorted_json("{\"a\": ").is_err(), "truncated JSON must fail");
}

#[test]
fn reset_zeroes_values_but_keeps_registration() {
    with_telemetry(|| {
        COUNTER.add(4);
        HISTOGRAM.observe(9);
        let _ = tm::span("gone");
        let registered = tm::registered_len();
        assert!(registered > 0);
        tm::reset();
        assert_eq!(tm::registered_len(), registered);
        assert_eq!(COUNTER.value(), 0);
        assert_eq!(HISTOGRAM.count(), 0);
        assert_eq!(HISTOGRAM.min(), 0);
        assert!(tm::snapshot().spans.is_empty());
    });
}

#[test]
fn deterministic_view_excludes_wall_metrics() {
    let view = with_telemetry(|| {
        COUNTER.add(1);
        WALL_COUNTER.add(1);
        GAUGE.set(9);
        tm::snapshot().deterministic_view()
    });
    assert!(view.contains("counter test.counter 1"));
    assert!(!view.contains("test.wall_counter"), "wall metrics must stay out:\n{view}");
    assert!(!view.contains("test.gauge"));
}

#[test]
fn log_level_round_trips() {
    assert_eq!(tm::log_level(), tm::LogLevel::Info);
    tm::set_log_level(tm::LogLevel::Verbose);
    assert_eq!(tm::log_level(), tm::LogLevel::Verbose);
    tm::set_log_level(tm::LogLevel::Quiet);
    assert_eq!(tm::log_level(), tm::LogLevel::Quiet);
    tm::set_log_level(tm::LogLevel::Info);
    // The macros must compile against the crate-rooted paths.
    tm::info!("logger info smoke {}", 1);
    tm::verbose!("logger verbose smoke {}", 2);
}
