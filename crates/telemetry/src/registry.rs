//! The global metric registry and deterministic snapshots.
//!
//! Handles register themselves lazily on first enabled record (see
//! [`crate::metrics`]); the registry is therefore empty — and has never
//! allocated — in a process that never enabled telemetry. Snapshots
//! merge per-worker cells (shard-index order) and sort every section by
//! name, so equal counts render to equal bytes regardless of thread
//! count or registration order.

use crate::metrics::{Class, Counter, Gauge, Histogram};
use crate::spans::{self, SpanSample};
use std::fmt::Write as _;
use std::sync::Mutex;

struct Registry {
    counters: Mutex<Vec<&'static Counter>>,
    gauges: Mutex<Vec<&'static Gauge>>,
    histograms: Mutex<Vec<&'static Histogram>>,
}

static REGISTRY: Registry = Registry {
    counters: Mutex::new(Vec::new()),
    gauges: Mutex::new(Vec::new()),
    histograms: Mutex::new(Vec::new()),
};

pub(crate) fn register_counter(c: &'static Counter) {
    REGISTRY.counters.lock().unwrap().push(c);
}

pub(crate) fn register_gauge(g: &'static Gauge) {
    REGISTRY.gauges.lock().unwrap().push(g);
}

pub(crate) fn register_histogram(h: &'static Histogram) {
    REGISTRY.histograms.lock().unwrap().push(h);
}

/// Total number of registered metric handles. Stays 0 while telemetry
/// has never been enabled (pinned by `tests/off.rs`).
pub fn registered_len() -> usize {
    REGISTRY.counters.lock().unwrap().len()
        + REGISTRY.gauges.lock().unwrap().len()
        + REGISTRY.histograms.lock().unwrap().len()
}

#[derive(Clone, Debug)]
pub struct CounterSample {
    pub name: &'static str,
    pub class: Class,
    pub value: u64,
}

#[derive(Clone, Debug)]
pub struct GaugeSample {
    pub name: &'static str,
    pub class: Class,
    pub value: i64,
    pub high_water: i64,
}

#[derive(Clone, Debug)]
pub struct HistogramSample {
    pub name: &'static str,
    pub class: Class,
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// Non-empty `(log2, count)` buckets, ascending.
    pub buckets: Vec<(u8, u64)>,
}

/// A point-in-time, name-sorted view of every registered metric plus the
/// merged span tree.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    pub counters: Vec<CounterSample>,
    pub gauges: Vec<GaugeSample>,
    pub histograms: Vec<HistogramSample>,
    pub spans: Vec<SpanSample>,
}

impl Snapshot {
    /// Render only the deterministic (Count-class) content — counter
    /// values, size-histogram shapes, span call counts — as one sorted
    /// text blob. Two runs with the same schedule-independent behaviour
    /// produce byte-identical views at any thread count; the property
    /// test compares these directly.
    pub fn deterministic_view(&self) -> String {
        let mut s = String::new();
        for c in self.counters.iter().filter(|c| c.class == Class::Count) {
            let _ = writeln!(s, "counter {} {}", c.name, c.value);
        }
        for g in self.gauges.iter().filter(|g| g.class == Class::Count) {
            let _ = writeln!(s, "gauge {} {} {}", g.name, g.value, g.high_water);
        }
        for h in self.histograms.iter().filter(|h| h.class == Class::Count) {
            let _ = write!(
                s,
                "histogram {} n={} sum={} min={} max={}",
                h.name, h.count, h.sum, h.min, h.max
            );
            for (k, n) in &h.buckets {
                let _ = write!(s, " b{k:02}={n}");
            }
            let _ = writeln!(s);
        }
        for sp in &self.spans {
            let _ = writeln!(s, "span {} {}", sp.path, sp.count);
        }
        s
    }

    /// Does any metric name start with `prefix.`? (Family presence check
    /// for the profile smoke.)
    pub fn has_family(&self, prefix: &str) -> bool {
        let starts = |n: &str| n.starts_with(prefix) && n[prefix.len()..].starts_with('.');
        self.counters.iter().any(|c| starts(c.name))
            || self.gauges.iter().any(|g| starts(g.name))
            || self.histograms.iter().any(|h| starts(h.name))
    }
}

/// Take a deterministic snapshot of everything registered so far.
pub fn snapshot() -> Snapshot {
    let mut counters: Vec<CounterSample> = REGISTRY
        .counters
        .lock()
        .unwrap()
        .iter()
        .map(|c| CounterSample { name: c.name(), class: c.class(), value: c.value() })
        .collect();
    counters.sort_by_key(|c| c.name);
    let mut gauges: Vec<GaugeSample> = REGISTRY
        .gauges
        .lock()
        .unwrap()
        .iter()
        .map(|g| GaugeSample {
            name: g.name(),
            class: g.class(),
            value: g.value(),
            high_water: g.high_water(),
        })
        .collect();
    gauges.sort_by_key(|g| g.name);
    let mut histograms: Vec<HistogramSample> = REGISTRY
        .histograms
        .lock()
        .unwrap()
        .iter()
        .map(|h| HistogramSample {
            name: h.name(),
            class: h.class(),
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            buckets: h.buckets(),
        })
        .collect();
    histograms.sort_by_key(|h| h.name);
    Snapshot { counters, gauges, histograms, spans: spans::merged() }
}

/// Zero every registered metric and drop the span tree. Registration is
/// kept (handles stay registered); only values reset.
pub fn reset() {
    for c in REGISTRY.counters.lock().unwrap().iter() {
        c.clear();
    }
    for g in REGISTRY.gauges.lock().unwrap().iter() {
        g.clear();
    }
    for h in REGISTRY.histograms.lock().unwrap().iter() {
        h.clear();
    }
    spans::clear();
}
