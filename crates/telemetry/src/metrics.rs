//! Metric handles: sharded counters, gauges, and log₂-bucketed
//! histograms.
//!
//! Handles are `const`-constructible so they can live in `static`s (see
//! [`crate::stats`]) and cost nothing at program start. A handle
//! registers itself with the global registry on its *first enabled*
//! record — while telemetry is disabled a handle is never registered and
//! never allocates, which is what lets the off-mode test pin "zero
//! registrations, zero allocations".

use crate::registry;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

/// Determinism class of a metric. See the crate docs: `Count` values are
/// bit-identical across thread counts and repeated runs; `Wall` values
/// (times, high-water marks, scheduling-dependent allocation counts) are
/// not, and every export marks them so.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Class {
    /// Scheduling-independent event count: covered by the bit-identity
    /// contract.
    Count,
    /// Wall-clock or scheduling-dependent: explicitly outside it.
    Wall,
}

impl Class {
    pub fn label(self) -> &'static str {
        match self {
            Class::Count => "count",
            Class::Wall => "wall",
        }
    }
}

/// Shard count for counter cells. Worker threads map onto shards by
/// index (mod this), so contended hot sites mostly touch distinct cache
/// lines; sums are shard-order independent, so wrapping never affects a
/// reported value.
const SHARDS: usize = 16;

/// One cache line per shard cell so concurrent workers don't false-share.
#[repr(align(64))]
struct Cell(AtomicU64);

impl Cell {
    // Purely an array-repeat initializer for const construction — each
    // array element gets its own copy, so the "shared mutable const"
    // hazard the lint guards against cannot arise.
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: Cell = Cell(AtomicU64::new(0));
}

/// Which shard the calling thread writes: pool worker `i` gets cell
/// `(i + 1) % SHARDS`, every non-pool thread (main, test harness) shares
/// cell 0.
#[inline]
fn shard() -> usize {
    match rayon::current_thread_index() {
        Some(i) => (i + 1) & (SHARDS - 1),
        None => 0,
    }
}

/// A named monotone counter, sharded per worker.
pub struct Counter {
    name: &'static str,
    class: Class,
    cells: [Cell; SHARDS],
    registered: AtomicBool,
}

impl Counter {
    pub const fn new(name: &'static str, class: Class) -> Self {
        Counter { name, class, cells: [Cell::ZERO; SHARDS], registered: AtomicBool::new(false) }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    pub fn class(&self) -> Class {
        self.class
    }

    /// Add `n` if telemetry is enabled; one relaxed load otherwise.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if crate::enabled() {
            self.record(n);
        }
    }

    #[inline]
    pub fn inc(&'static self) {
        self.add(1);
    }

    /// Unconditional add, for sites that captured `enabled()` once and
    /// batched events into a local (the Dijkstra inner loops).
    #[inline]
    pub fn record(&'static self, n: u64) {
        self.ensure_registered();
        self.cells[shard()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Sum of all shards, shard-index order (the order is irrelevant to
    /// the sum; it is fixed anyway so snapshots are reproducible).
    pub fn value(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }

    pub(crate) fn clear(&self) {
        for c in &self.cells {
            c.0.store(0, Ordering::Relaxed);
        }
    }

    fn ensure_registered(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry::register_counter(self);
        }
    }
}

/// A named gauge: last-set value plus a high-water mark. Gauges describe
/// instantaneous state (live leases, bypass engagement), which under
/// threads depends on scheduling — so most gauges are [`Class::Wall`].
pub struct Gauge {
    name: &'static str,
    class: Class,
    value: AtomicI64,
    max: AtomicI64,
    registered: AtomicBool,
}

impl Gauge {
    pub const fn new(name: &'static str, class: Class) -> Self {
        Gauge {
            name,
            class,
            value: AtomicI64::new(0),
            max: AtomicI64::new(i64::MIN),
            registered: AtomicBool::new(false),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    pub fn class(&self) -> Class {
        self.class
    }

    #[inline]
    pub fn set(&'static self, v: i64) {
        if crate::enabled() {
            self.ensure_registered();
            self.value.store(v, Ordering::Relaxed);
            self.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn add(&'static self, delta: i64) {
        if crate::enabled() {
            self.ensure_registered();
            let v = self.value.fetch_add(delta, Ordering::Relaxed) + delta;
            self.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// High-water mark since the last reset (`0` if never set).
    pub fn high_water(&self) -> i64 {
        self.max.load(Ordering::Relaxed).max(0)
    }

    pub(crate) fn clear(&self) {
        self.value.store(0, Ordering::Relaxed);
        self.max.store(i64::MIN, Ordering::Relaxed);
    }

    fn ensure_registered(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry::register_gauge(self);
        }
    }
}

/// Number of log₂ buckets: one per possible floor(log₂ v) of a u64.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A named histogram over u64 observations with power-of-two buckets:
/// bucket `k` counts observations in `[2^k, 2^(k+1))` (`0` lands in
/// bucket 0). Unsharded — histograms record at coarse sites (per event,
/// per flush, per sweep cell), never inside inner loops.
pub struct Histogram {
    name: &'static str,
    class: Class,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    registered: AtomicBool,
}

impl Histogram {
    pub const fn new(name: &'static str, class: Class) -> Self {
        // Array-repeat initializer only (see `Cell::ZERO`).
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            name,
            class,
            count: ZERO,
            sum: ZERO,
            min: AtomicU64::new(u64::MAX),
            max: ZERO,
            buckets: [ZERO; HISTOGRAM_BUCKETS],
            registered: AtomicBool::new(false),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    pub fn class(&self) -> Class {
        self.class
    }

    /// Floor(log₂ v), with 0 mapped to bucket 0.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        (63 - (v | 1).leading_zeros()) as usize
    }

    #[inline]
    pub fn observe(&'static self, v: u64) {
        if crate::enabled() {
            self.ensure_registered();
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
            self.min.fetch_min(v, Ordering::Relaxed);
            self.max.fetch_max(v, Ordering::Relaxed);
            self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Observe a duration in microseconds (time histograms use a `.us`
    /// name suffix and are always [`Class::Wall`]).
    #[inline]
    pub fn observe_duration(&'static self, d: std::time::Duration) {
        self.observe(d.as_micros() as u64);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Non-empty buckets as `(log2, count)`, ascending.
    pub fn buckets(&self) -> Vec<(u8, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(k, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((k as u8, n))
            })
            .collect()
    }

    pub(crate) fn clear(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }

    fn ensure_registered(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry::register_histogram(self);
        }
    }
}

/// A per-instance counter that mirrors into a global [`Counter`].
///
/// The oracle caches need *per-oracle* hit/miss numbers (their tests
/// assert exact per-instance values, and `cargo test` runs many oracles
/// concurrently in one process), while the profile wants one process
/// aggregate. An `OwnedCounter` is the bridge: the local cell is always
/// maintained (it replaces the hand-rolled `AtomicU64`s the oracles used
/// to carry, at identical cost), and each increment is additionally
/// forwarded to the named global counter when telemetry is enabled.
pub struct OwnedCounter {
    local: AtomicU64,
    global: &'static Counter,
}

impl OwnedCounter {
    pub fn new(global: &'static Counter) -> Self {
        OwnedCounter { local: AtomicU64::new(0), global }
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.local.fetch_add(n, Ordering::Relaxed);
        self.global.add(n);
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// This instance's count (not the global aggregate).
    pub fn get(&self) -> u64 {
        self.local.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for OwnedCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OwnedCounter")
            .field("local", &self.get())
            .field("global", &self.global.name())
            .finish()
    }
}
