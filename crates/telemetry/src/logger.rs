//! A leveled logger for the experiment binaries.
//!
//! Three levels: `Quiet` (artifact data only), `Info` (the default —
//! exactly the lines `repro` has always printed, so smoke greps keep
//! passing), `Verbose` (extra progress diagnostics, written to stderr so
//! they can never perturb stdout artifacts). The level is a process
//! global read with one relaxed load per call site.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum LogLevel {
    /// Suppress informational chatter; artifact data still prints.
    Quiet = 0,
    /// Default: the historical output, unchanged.
    Info = 1,
    /// Extra progress diagnostics on stderr.
    Verbose = 2,
}

static LEVEL: AtomicU8 = AtomicU8::new(LogLevel::Info as u8);

pub fn set_log_level(level: LogLevel) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

pub fn log_level() -> LogLevel {
    match LEVEL.load(Ordering::Relaxed) {
        0 => LogLevel::Quiet,
        2 => LogLevel::Verbose,
        _ => LogLevel::Info,
    }
}

/// Backing fn for [`crate::info!`]: stdout, shown at Info and Verbose.
pub fn log_info(args: fmt::Arguments<'_>) {
    if log_level() >= LogLevel::Info {
        println!("{args}");
    }
}

/// Backing fn for [`crate::verbose!`]: stderr, shown only at Verbose.
pub fn log_verbose(args: fmt::Arguments<'_>) {
    if log_level() >= LogLevel::Verbose {
        eprintln!("{args}");
    }
}

/// Print an informational line (stdout; suppressed by `--quiet`).
#[macro_export]
macro_rules! info {
    ($($t:tt)*) => {
        $crate::logger::log_info(::core::format_args!($($t)*))
    };
}

/// Print a progress diagnostic (stderr; shown only with `--verbose`).
#[macro_export]
macro_rules! verbose {
    ($($t:tt)*) => {
        $crate::logger::log_verbose(::core::format_args!($($t)*))
    };
}
