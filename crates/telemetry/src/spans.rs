//! Hierarchical scoped-span profiling.
//!
//! A [`SpanGuard`] marks a region (`phase` → `oracle call` → `fan-out` →
//! `queue ops`); nesting builds a `/`-separated path from the calling
//! thread's span stack. Each thread accumulates `(count, ns)` per path
//! in a thread-local map and flushes it into the global tree when its
//! outermost span closes — so the global mutex is taken once per
//! top-level span, not once per guard, and pool workers (which never
//! exit) still publish everything they measured.
//!
//! Determinism: span *counts* are Class::Count (the call tree is part of
//! the algorithm's schedule-independent behaviour); span *times* are
//! wall-clock. The merged tree is path-sorted.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

#[derive(Clone, Copy, Default)]
struct SpanStat {
    count: u64,
    total_ns: u64,
}

static GLOBAL: Mutex<BTreeMap<String, SpanStat>> = Mutex::new(BTreeMap::new());

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    static LOCAL: RefCell<BTreeMap<String, SpanStat>> = const { RefCell::new(BTreeMap::new()) };
}

/// One merged span: full path (`repro/sweep/cell`), how many times it
/// ran, and total wall time inside it (children included).
#[derive(Clone, Debug)]
pub struct SpanSample {
    pub path: String,
    pub count: u64,
    pub total_ns: u64,
}

/// An RAII span. Created by [`span`]; records on drop. Inert (and
/// allocation-free) when telemetry is disabled at creation.
pub struct SpanGuard {
    start: Option<Instant>,
}

/// Open a span named `name` under whatever span the calling thread
/// currently has open. One relaxed load when telemetry is off.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { start: None };
    }
    STACK.with(|s| s.borrow_mut().push(name));
    SpanGuard { start: Some(Instant::now()) }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed().as_nanos() as u64;
        let depth = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            LOCAL.with(|l| {
                let mut local = l.borrow_mut();
                let e = local.entry(path).or_default();
                e.count += 1;
                e.total_ns += elapsed;
            });
            stack.len()
        });
        if depth == 0 {
            flush_local();
        }
    }
}

/// Publish this thread's accumulated span stats into the global tree.
fn flush_local() {
    LOCAL.with(|l| {
        let mut local = l.borrow_mut();
        if local.is_empty() {
            return;
        }
        let drained = std::mem::take(&mut *local);
        let mut global = GLOBAL.lock().unwrap();
        for (path, st) in drained {
            let e = global.entry(path).or_default();
            e.count += st.count;
            e.total_ns += st.total_ns;
        }
    });
}

/// The merged, path-sorted span tree (flushes the calling thread first).
pub(crate) fn merged() -> Vec<SpanSample> {
    flush_local();
    GLOBAL
        .lock()
        .unwrap()
        .iter()
        .map(|(path, st)| SpanSample { path: path.clone(), count: st.count, total_ns: st.total_ns })
        .collect()
}

pub(crate) fn clear() {
    flush_local();
    GLOBAL.lock().unwrap().clear();
}
