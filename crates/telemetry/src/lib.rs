//! `omcf-telemetry` — the repo's observability substrate: a registry of
//! named counters, gauges, and log-scaled histograms, a hierarchical
//! scoped-span profiler, and a leveled logger. No external dependencies
//! (this environment is offline); the only imports are `omcf-numerics`
//! (for the sorted-key JSON writer) and the rayon shim (for worker
//! indices).
//!
//! # Design contract
//!
//! * **Disabled by default, one relaxed load off-cost.** Every
//!   instrumented site first reads one process-global relaxed
//!   [`AtomicBool`]; while telemetry is off nothing else happens — no
//!   allocation, no registration, no thread-local touch (pinned by
//!   `tests/off.rs` with a counting allocator).
//! * **Counts are deterministic, times are wall-clock.** Each metric
//!   carries a [`Class`]: `Count` metrics are u64 sums of
//!   scheduling-independent events, so their totals are bit-identical
//!   across `Parallelism::Serial`/`Threads(n)` and across repeated runs
//!   (addition of u64s commutes; shard assignment cannot change a sum).
//!   `Wall` metrics (latencies, high-water marks, allocation counts that
//!   depend on interleaving) are explicitly excluded from that contract
//!   and marked as such in every export.
//!
//!   One boundary condition: the `Count` guarantee presupposes that no
//!   epoch-cached oracle is shared across *concurrently running* solves.
//!   A contended oracle deliberately falls back to lock-free recompute
//!   (see `omcf-overlay`), so the set of Dijkstras actually run — and
//!   with it `routing.*` work counters — varies with lock interleaving
//!   there. All profile-bearing drivers (the sweep grid, replay, every
//!   single-solve path) give each concurrent solve its own oracle and
//!   satisfy the precondition; the part-one ratio sweeps share one
//!   oracle across parallel runs by design and are reproducible only
//!   under `Parallelism::Serial`. Oracle cache hit/miss counters are
//!   `Wall` outright — contention skews them on the shared-oracle path
//!   regardless.
//! * **Deterministic merge order.** Snapshots merge per-worker cells
//!   shard-index-ordered and emit metrics name-sorted; span trees are
//!   merged path-sorted. Two snapshots of the same counts render to the
//!   same bytes.
//!
//! All metric handles live in [`stats`] so every name exists exactly once
//! process-wide (the sorted-key JSON writer rejects duplicate keys).
//! Naming scheme and the full determinism contract: `docs/OBSERVABILITY.md`.

pub mod export;
pub mod logger;
pub mod metrics;
pub mod registry;
pub mod spans;
pub mod stats;

pub use export::{lint_sorted_json, render_profile_json};
pub use logger::{log_level, set_log_level, LogLevel};
pub use metrics::{Class, Counter, Gauge, Histogram, OwnedCounter};
pub use registry::{registered_len, reset, snapshot, Snapshot};
pub use spans::{span, SpanGuard};

use std::sync::atomic::{AtomicBool, Ordering};

/// The process-global master switch. Reading it is the entire off-path
/// cost of an instrumented site.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is telemetry collection on? One relaxed atomic load — hot loops that
/// batch events into locals should capture this once per run instead of
/// re-asking per event.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn collection on or off. Sites observe the change at their next
/// event; counts recorded while off are simply never taken.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}
