//! Profile export: a [`Snapshot`] rendered as sorted-key JSON via
//! `omcf_numerics::jsonfmt`, plus a structural linter used by the schema
//! round-trip test and the CI profile smoke.
//!
//! Schema (`omcf-telemetry-v1`):
//!
//! ```json
//! {
//!   "counters":   { "<name>": {"class": "count|wall", "value": N}, ... },
//!   "gauges":     { "<name>": {"class": ..., "high_water": N, "value": N}, ... },
//!   "histograms": { "<name>": {"buckets": {"b<kk>": N, ...}, "class": ...,
//!                              "count": N, "max": N, "min": N, "sum": N}, ... },
//!   "spans":      { "<path>": {"count": N, "total_ms": X}, ... },
//!   "schema": "omcf-telemetry-v1"
//! }
//! ```
//!
//! Bucket key `b<kk>` (two digits, zero-padded so lexicographic order is
//! numeric order) counts observations in `[2^k, 2^(k+1))`. `class`
//! "count" values are bit-identical across thread counts; "wall" values
//! are wall-clock or scheduling-dependent (see docs/OBSERVABILITY.md).

use crate::registry::Snapshot;
use omcf_numerics::jsonfmt;

/// Render a snapshot as the sorted-key profile JSON artifact.
pub fn render_profile_json(snap: &Snapshot) -> String {
    let mut counters = jsonfmt::JsonObject::new();
    for c in &snap.counters {
        let entry = jsonfmt::JsonObject::new()
            .text("class", c.class.label())
            .field("value", c.value.to_string())
            .inline();
        counters = counters.field(c.name, entry);
    }
    let mut gauges = jsonfmt::JsonObject::new();
    for g in &snap.gauges {
        let entry = jsonfmt::JsonObject::new()
            .text("class", g.class.label())
            .field("high_water", g.high_water.to_string())
            .field("value", g.value.to_string())
            .inline();
        gauges = gauges.field(g.name, entry);
    }
    let mut histograms = jsonfmt::JsonObject::new();
    for h in &snap.histograms {
        let mut buckets = jsonfmt::JsonObject::new();
        for (k, n) in &h.buckets {
            buckets = buckets.field(&format!("b{k:02}"), n.to_string());
        }
        let entry = jsonfmt::JsonObject::new()
            .field("buckets", buckets.inline())
            .text("class", h.class.label())
            .field("count", h.count.to_string())
            .field("max", h.max.to_string())
            .field("min", h.min.to_string())
            .field("sum", h.sum.to_string())
            .inline();
        histograms = histograms.field(h.name, entry);
    }
    let mut spans = jsonfmt::JsonObject::new();
    for sp in &snap.spans {
        let entry = jsonfmt::JsonObject::new()
            .field("count", sp.count.to_string())
            .field("total_ms", jsonfmt::fixed(sp.total_ns as f64 / 1e6, 3))
            .inline();
        spans = spans.field(&sp.path, entry);
    }
    let mut out = jsonfmt::JsonObject::new()
        .field("counters", counters.pretty(1))
        .field("gauges", gauges.pretty(1))
        .field("histograms", histograms.pretty(1))
        .text("schema", "omcf-telemetry-v1")
        .field("spans", spans.pretty(1))
        .pretty(0);
    out.push('\n');
    out
}

/// Structurally lint a JSON document: balanced syntax, and every object's
/// keys in strictly ascending (duplicate-free) order. Returns the number
/// of objects seen. This is the "parse" half of the schema round-trip
/// test — it accepts exactly the dialect `jsonfmt` emits.
pub fn lint_sorted_json(text: &str) -> Result<usize, String> {
    let mut lint = Linter { bytes: text.as_bytes(), pos: 0, objects: 0 };
    lint.skip_ws();
    lint.value()?;
    lint.skip_ws();
    if lint.pos != lint.bytes.len() {
        return Err(format!("trailing content at byte {}", lint.pos));
    }
    Ok(lint.objects)
}

struct Linter<'a> {
    bytes: &'a [u8],
    pos: usize,
    objects: usize,
}

impl Linter<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(|_| ()),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.objects += 1;
        self.skip_ws();
        let mut prev: Option<String> = None;
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if let Some(p) = &prev {
                if *p >= key {
                    return Err(format!("keys out of order: `{p}` before `{key}`"));
                }
            }
            prev = Some(key);
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                other => {
                    return Err(format!("unexpected {other:?} in object at byte {}", self.pos))
                }
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                other => return Err(format!("unexpected {other:?} in array at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        loop {
            match self.peek() {
                Some(b'"') => {
                    let s = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => self.pos += 2,
                Some(_) => self.pos += 1,
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("empty number at byte {start}"));
        }
        Ok(())
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }
}
