//! Every metric handle in the workspace, declared once.
//!
//! Centralising the statics guarantees each metric name exists exactly
//! once process-wide (the sorted-key JSON writer panics on duplicate
//! keys) and gives one place to read the whole vocabulary. Naming:
//! `<family>.<subsystem>.<event>[.<unit>]`, families `engine`, `oracle`,
//! `routing`, `runtime`, `fleet`, `sweep`; time histograms end in `.us`
//! (microseconds). Classes per the crate contract: `Count` is
//! bit-identical across thread counts, `Wall` is not.

use crate::metrics::{Class, Counter, Gauge, Histogram};

// --- engine (Garg–Könemann length-update engine, omcf-core) ----------

/// Oracle calls made by the engine (`min_tree`/`min_trees`); equals the
/// solvers' `mst_ops`.
pub static ENGINE_ORACLE_CALLS: Counter = Counter::new("engine.oracle.calls", Class::Count);
/// Augmentations applied (one per accepted tree).
pub static ENGINE_AUGMENTS: Counter = Counter::new("engine.augment.count", Class::Count);
/// Edge length multipliers written by augmentations.
pub static ENGINE_AUGMENT_EDGES: Counter = Counter::new("engine.augment.edges", Class::Count);
/// Pending length-update flushes (batched mode read barriers).
pub static ENGINE_FLUSHES: Counter = Counter::new("engine.flush.count", Class::Count);
/// Edges whose length was materialised by flushes.
pub static ENGINE_FLUSH_EDGES: Counter = Counter::new("engine.flush.edges", Class::Count);
/// Flushes that took the CSR sweep path (vs. the pointwise fallback).
pub static ENGINE_FLUSH_SWEEPS: Counter = Counter::new("engine.flush.sweeps", Class::Count);
/// Lazy epoch advances latched by augments and applied at the next read.
pub static ENGINE_EPOCH_ADVANCES: Counter = Counter::new("engine.epoch.advances", Class::Count);

// --- oracle (epoch-cached tree oracles, omcf-overlay) -----------------
//
// All five cache counters are Wall class, not Count: an oracle shared
// across parallel solver runs (e.g. a rayon ratio sweep) resolves cache
// contention with `try_lock`, and a contended query falls back to the
// uncached path — counted as misses — so hit/miss totals depend on lock
// interleaving. (Under the sweep driver every cell owns its oracle and
// probes serially, so there the totals happen to be reproducible, but the
// class records the universal guarantee, not the best case.)

/// Dynamic-oracle member Dijkstras answered from the epoch cache.
pub static ORACLE_DYNAMIC_HITS: Counter = Counter::new("oracle.dynamic.cache.hits", Class::Wall);
/// Dynamic-oracle member Dijkstras actually recomputed.
pub static ORACLE_DYNAMIC_MISSES: Counter =
    Counter::new("oracle.dynamic.cache.misses", Class::Wall);
/// Fixed-IP-oracle session trees answered from the epoch cache.
pub static ORACLE_FIXED_HITS: Counter = Counter::new("oracle.fixed.cache.hits", Class::Wall);
/// Fixed-IP-oracle session trees actually recomputed.
pub static ORACLE_FIXED_MISSES: Counter = Counter::new("oracle.fixed.cache.misses", Class::Wall);
/// Queries that skipped cache probing because auto-bypass engaged (the
/// bypass gauge trips on miss streaks, themselves contention-dependent).
pub static ORACLE_BYPASSED: Counter = Counter::new("oracle.cache.bypassed", Class::Wall);

// --- routing (CSR Dijkstra + workspace pool, omcf-routing) ------------

/// Dijkstra runs (single-source workspace runs and batched lanes).
pub static ROUTING_DIJKSTRA_RUNS: Counter = Counter::new("routing.dijkstra.runs", Class::Count);
/// Priority-queue pushes across all disciplines.
pub static ROUTING_HEAP_PUSHES: Counter = Counter::new("routing.heap.pushes", Class::Count);
/// Priority-queue pops (stale pops included).
pub static ROUTING_HEAP_POPS: Counter = Counter::new("routing.heap.pops", Class::Count);
/// Arcs examined by settled-node relaxation scans.
pub static ROUTING_RELAXATIONS: Counter = Counter::new("routing.relaxations", Class::Count);
/// Workspace-pool leases (workspaces + batches + mirrors). Lease counts
/// are schedule-independent; *allocation* counts below are not.
pub static ROUTING_POOL_LEASES: Counter = Counter::new("routing.pool.leases", Class::Count);
/// Pool leases that had to allocate because the free list was empty —
/// depends on thread interleaving, hence Wall class.
pub static ROUTING_POOL_ALLOCS: Counter = Counter::new("routing.pool.allocs", Class::Wall);
/// Arc-mirror gathers (`fill_arc_lengths` sweeps feeding batched runs).
pub static ROUTING_MIRROR_GATHERS: Counter = Counter::new("routing.mirror.gathers", Class::Count);
/// Arcs copied by those gathers.
pub static ROUTING_MIRROR_ARCS: Counter = Counter::new("routing.mirror.arcs", Class::Count);

// --- runtime (event loop, omcf-runtime) -------------------------------

/// Events applied, by kind.
pub static RUNTIME_EVENTS_JOIN: Counter = Counter::new("runtime.event.join.count", Class::Count);
pub static RUNTIME_EVENTS_LEAVE: Counter = Counter::new("runtime.event.leave.count", Class::Count);
pub static RUNTIME_EVENTS_CAPACITY: Counter =
    Counter::new("runtime.event.capacity.count", Class::Count);
pub static RUNTIME_EVENTS_REOPT: Counter = Counter::new("runtime.event.reopt.count", Class::Count);
/// Per-event-kind apply latency (µs), wall-clock.
pub static RUNTIME_EVENT_JOIN_US: Histogram = Histogram::new("runtime.event.join.us", Class::Wall);
pub static RUNTIME_EVENT_LEAVE_US: Histogram =
    Histogram::new("runtime.event.leave.us", Class::Wall);
pub static RUNTIME_EVENT_CAPACITY_US: Histogram =
    Histogram::new("runtime.event.capacity.us", Class::Wall);
pub static RUNTIME_EVENT_REOPT_US: Histogram =
    Histogram::new("runtime.event.reopt.us", Class::Wall);
/// Edges replayed by exact rollbacks (leaves + capacity rescales).
pub static RUNTIME_ROLLBACK_EDGES: Counter = Counter::new("runtime.rollback.edges", Class::Count);
/// Snapshot sizes in bytes (deterministic: the text is bit-pinned).
pub static RUNTIME_SNAPSHOT_BYTES: Histogram =
    Histogram::new("runtime.snapshot.bytes", Class::Count);
/// Snapshot render latency (µs), wall-clock.
pub static RUNTIME_SNAPSHOT_US: Histogram = Histogram::new("runtime.snapshot.us", Class::Wall);

// --- fleet (sharded multi-overlay service, omcf-runtime::fleet) -------

/// Events admitted into shard queues.
pub static FLEET_EVENTS_ACCEPTED: Counter = Counter::new("fleet.events.accepted", Class::Count);
/// Submissions deferred by backpressure (shard queue at capacity).
pub static FLEET_EVENTS_DEFERRED: Counter = Counter::new("fleet.events.deferred", Class::Count);
/// Submissions rejected outright (unknown shard).
pub static FLEET_EVENTS_REJECTED: Counter = Counter::new("fleet.events.rejected", Class::Count);
/// Events applied to shard runtimes by drive rounds.
pub static FLEET_EVENTS_APPLIED: Counter = Counter::new("fleet.events.applied", Class::Count);
/// Drive rounds executed.
pub static FLEET_DRIVES: Counter = Counter::new("fleet.drives", Class::Count);
/// Events drained per drive round (size histogram; deterministic).
pub static FLEET_DRIVE_EVENTS: Histogram = Histogram::new("fleet.drive.events", Class::Count);
/// Drive round latency (µs), wall-clock.
pub static FLEET_DRIVE_US: Histogram = Histogram::new("fleet.drive.us", Class::Wall);
/// Fleet snapshot container sizes (bytes; deterministic).
pub static FLEET_SNAPSHOT_BYTES: Histogram = Histogram::new("fleet.snapshot.bytes", Class::Count);
/// Bytes appended to the event WAL (framing included).
pub static FLEET_WAL_BYTES: Counter = Counter::new("fleet.wal.bytes", Class::Count);
/// WAL records replayed by crash recovery.
pub static FLEET_RECOVERED_EVENTS: Counter = Counter::new("fleet.recover.events", Class::Count);

// --- sweep (scenario sweep driver, omcf-sim) --------------------------

/// Sweep cells solved.
pub static SWEEP_CELLS: Counter = Counter::new("sweep.cells", Class::Count);
/// Oracle calls per cell (size histogram; deterministic).
pub static SWEEP_CELL_MST_OPS: Histogram = Histogram::new("sweep.cell.mst_ops", Class::Count);
/// Iterations per cell (size histogram; deterministic).
pub static SWEEP_CELL_ITERATIONS: Histogram = Histogram::new("sweep.cell.iterations", Class::Count);
/// Per-cell solve latency (µs), wall-clock.
pub static SWEEP_CELL_SOLVE_US: Histogram = Histogram::new("sweep.cell.solve.us", Class::Wall);
/// Live sweep-cell solves in flight (high-water ≈ effective parallelism).
pub static SWEEP_CELLS_IN_FLIGHT: Gauge = Gauge::new("sweep.cells.in_flight", Class::Wall);
