//! `overlay_mcf` — facade over the overlay multicommodity-flow workspace.
//!
//! This crate re-exports the whole workspace behind stable module paths so
//! applications (and the `examples/`) depend on a single crate:
//!
//! | Path | Backing crate | Contents |
//! |------|---------------|----------|
//! | [`numerics`] | `omcf-numerics` | extended-range floats, PRNGs, stats |
//! | [`topology`] | `omcf-topology` | Waxman / Barabási / hierarchy generators |
//! | [`maxflow`] | `omcf-maxflow` | Dinic, push-relabel, min-cut |
//! | [`routing`] | `omcf-routing` | fixed-IP and dynamic shortest paths |
//! | [`overlay`] | `omcf-overlay` | sessions, overlay trees, MST oracles |
//! | [`treepack`] | `omcf-treepack` | spanning-tree packing, network strength |
//! | [`solver`] | `omcf-core` | M1/M2 FPTAS, rounding, online algorithm |
//! | [`runtime`] | `omcf-runtime` | event-driven session runtime, the sharded `Fleet`, snapshots, WAL, replay |
//! | [`sim`] | `omcf-sim` | the paper's scenarios, tables and figures |
//!
//! The [`prelude`] pulls in the names a typical program needs:
//!
//! ```
//! use overlay_mcf::prelude::*;
//! use overlay_mcf::topology::waxman::{self, WaxmanParams};
//!
//! let mut rng = Xoshiro256pp::new(2004);
//! let params = WaxmanParams { n: 30, capacity: 100.0, ..WaxmanParams::default() };
//! let graph = waxman::generate(&params, &mut rng);
//! let sessions = random_sessions(&graph, 1, 4, 100.0, &mut rng);
//! let oracle = FixedIpOracle::new(&graph, &sessions);
//! let outcome = max_flow(&graph, &oracle, ApproxParams::for_m1(0.9));
//! assert!(outcome.summary.overall_throughput > 0.0);
//! ```

pub use omcf_core as solver;
pub use omcf_maxflow as maxflow;
pub use omcf_numerics as numerics;
pub use omcf_overlay as overlay;
pub use omcf_routing as routing;
pub use omcf_runtime as runtime;
pub use omcf_sim as sim;
pub use omcf_topology as topology;
pub use omcf_treepack as treepack;

pub mod prelude {
    //! The names a typical overlay-MCF program uses, importable in one line.

    pub use omcf_numerics::{Rng64, SplitMix64, Xoshiro256pp};

    pub use omcf_topology::{canned, EdgeId, Graph, GraphBuilder, NodeId};

    pub use omcf_overlay::{
        random_sessions, DynamicOracle, FixedIpOracle, OverlayTree, Session, SessionSet,
        TreeOracle, TreeStore,
    };

    pub use omcf_core::rounding::rounding_trials;
    pub use omcf_core::{
        max_concurrent_flow, max_flow, online_min_congestion, random_min_congestion, ApproxParams,
        FlowSummary, MaxFlowOutcome, McfOutcome, OnlineOutcome, RoundingOutcome,
    };
    pub use omcf_core::{Instance, RoutingMode, Solver, SolverKind, SolverOutcome};

    pub use omcf_runtime::{
        replay_churn, Admission, Event, Fleet, FleetConfig, Reoptimizer, ReplayConfig, Runtime,
        RuntimeConfig, ShardId,
    };
}
