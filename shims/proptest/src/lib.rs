//! Offline shim for [proptest](https://crates.io/crates/proptest).
//!
//! The build environment for this repository has no registry access, so this
//! crate provides the subset of proptest's API the workspace's property tests
//! use: the `proptest!` macro, `prop_assert*`/`prop_assume`, range and
//! `any::<T>()` strategies, and `prop::collection::vec`.
//!
//! Differences from the real crate, by design:
//!
//! * Inputs are sampled from a fixed-seed SplitMix64 stream, so every run of
//!   a test executes the identical case sequence (fully reproducible, no
//!   `PROPTEST_CASES`/persistence machinery).
//! * There is no shrinking: a failing case panics with the values already
//!   bound, which the `prop_assert!` message formats can print.
//! * Strategies are sampled uniformly over their range rather than with
//!   proptest's bias toward boundary values.
//!
//! Swapping in the real crate is a one-line change in the workspace manifest
//! and requires no source edits.

/// Run configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` sampled inputs per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the FPTAS-heavy property
        // suites fast enough for CI while still sweeping the input space.
        Self { cases: 64 }
    }
}

pub mod test_runner {
    pub use crate::ProptestConfig as Config;

    /// Deterministic SplitMix64 input stream for the shimmed strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Fixed-seed generator: every test run samples identical cases.
        #[must_use]
        pub fn deterministic() -> Self {
            Self { state: 0x9E37_79B9_7F4A_7C15 }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of sampled values — the shim's notion of proptest's
    /// `Strategy` (no shrinking, so it is just a sampler).
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty float range strategy");
                    let u = rng.unit_f64() as $t;
                    let v = self.start + u * (self.end - self.start);
                    // Guard against rounding up onto the excluded endpoint.
                    if v >= self.end { self.start } else { v }
                }
            }
        )*};
    }
    impl_float_range!(f32, f64);

    /// Strategy for `any::<T>()`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    /// Types with a full-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The whole domain of `T`, e.g. `any::<u64>()`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Tuple strategies sample each component in order.
    macro_rules! impl_tuple_strategy {
        ($(($($s:ident/$i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length bounds for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `elem`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(elem, len)` — vectors with length in `len`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    /// `prop::…` paths (e.g. `prop::collection::vec`) resolve through this
    /// alias of the crate root, mirroring the real prelude.
    pub use crate as prop;
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert a condition inside a property; panics with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip the current case when its sampled inputs don't satisfy a
/// precondition. Expands to an early return from the per-case closure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Shimmed `proptest! { … }`: each property becomes a `#[test]` that samples
/// its strategies `config.cases` times from a deterministic stream.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                for _case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    // The closure is what `prop_assume!`'s early `return`
                    // exits, skipping just the current case.
                    #[allow(clippy::redundant_closure_call)]
                    (move || $body)();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn int_ranges_in_bounds(v in -50i32..50, u in 3usize..9) {
            prop_assert!((-50..50).contains(&v));
            prop_assert!((3..9).contains(&u));
        }

        #[test]
        fn float_range_in_bounds(x in 1e-3f64..1e3) {
            prop_assert!((1e-3..1e3).contains(&x));
        }

        #[test]
        fn vec_strategy_respects_len(vals in prop::collection::vec(0u8..10, 2..6)) {
            prop_assert!(vals.len() >= 2 && vals.len() < 6);
            prop_assert!(vals.iter().all(|&b| b < 10));
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(seed in any::<u64>()) {
            let _ = seed;
        }
    }
}
