//! Offline shim for [criterion](https://crates.io/crates/criterion).
//!
//! The build environment for this repository has no registry access, so this
//! crate supplies the subset of criterion's API the workspace's benches use.
//! Instead of criterion's statistical sampling, each `Bencher::iter` runs its
//! routine a handful of times and prints the median wall-clock duration — a
//! smoke-run good enough to compare orders of magnitude and to keep
//! `cargo bench --no-run` compiling every bench target in CI. Swapping in the
//! real crate is a one-line change in the workspace manifest and requires no
//! source edits.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Number of timed repetitions per benchmark routine (the shim ignores
/// `sample_size`, which criterion interprets statistically anyway).
const SHIM_RUNS: usize = 3;

/// Top-level benchmark driver, handed to every `criterion_group!` function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmark a routine under `id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_named(id, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_string() }
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim always runs a fixed small
    /// number of repetitions.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; ignored by the shim.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Benchmark a routine under `group_name/id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_named(&format!("{}/{}", self.name, id.into_benchmark_id()), f);
        self
    }

    /// Benchmark a routine parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.into_benchmark_id()));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_named<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut b = Bencher::default();
    f(&mut b);
    b.report(name);
}

/// Timer handle passed to benchmark routines.
#[derive(Debug, Default)]
pub struct Bencher {
    median: Option<Duration>,
}

impl Bencher {
    /// Time `routine`, keeping the median of a few runs.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let mut times = Vec::with_capacity(SHIM_RUNS);
        for _ in 0..SHIM_RUNS {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed());
        }
        times.sort_unstable();
        self.median = Some(times[times.len() / 2]);
    }

    fn report(&self, name: &str) {
        match self.median {
            Some(t) => println!("bench {name:<60} median {t:?} ({SHIM_RUNS} runs)"),
            None => println!("bench {name:<60} (no measurement)"),
        }
    }
}

/// Identifier for a (possibly parameterized) benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self { text: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { text: parameter.to_string() }
    }
}

/// Conversion into the shim's flat benchmark-name string.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Bundle benchmark functions into a group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `fn main()` running the listed groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        c.bench_function("counting", |b| b.iter(|| runs += 1));
        assert_eq!(runs, SHIM_RUNS);
    }

    #[test]
    fn group_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut grp = c.benchmark_group("grp");
        grp.sample_size(10).bench_with_input(BenchmarkId::from_parameter(21), &21, |b, &x| {
            b.iter(|| assert_eq!(x * 2, 42))
        });
        grp.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).into_benchmark_id(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(0.5).into_benchmark_id(), "0.5");
    }
}
