//! Parallel iterators: the rayon-compatible subset the workspace uses.
//!
//! Unlike real rayon's CPS-based plumbing, every parallel iterator here
//! is **indexed and splittable**: it knows its length, can split at an
//! index, and can degrade to an ordinary sequential iterator for one
//! chunk. Execution recursively halves the iterator down to a chunk
//! size of `len / (threads * 4)`, runs the halves under [`crate::join`]
//! (so idle workers steal the larger, older half), and concatenates the
//! per-chunk `Vec`s **in index order**. The merge order is a pure
//! function of the split tree — which depends only on the length and
//! the chunk size, never on which worker ran what — so output is
//! byte-identical to a sequential run at any thread count, including
//! under work stealing. `sum` folds the collected `Vec` sequentially
//! for the same reason (float addition is not associative).

use std::ops::Range;
use std::sync::Arc;

use crate::registry::current_worker;

/// Split until chunks are about this many per worker; 4 gives the
/// stealing scheduler slack to rebalance uneven chunk costs without
/// drowning the deques in tiny jobs.
const CHUNKS_PER_THREAD: usize = 4;

// ---------------------------------------------------------------------------
// Core trait
// ---------------------------------------------------------------------------

/// A parallel iterator. The public surface (`map`, `collect`, `sum`,
/// `for_each`, `count`) matches `rayon::iter::ParallelIterator`; the
/// `#[doc(hidden)]` splitting plumbing is this shim's internal driver
/// and is not part of the compatibility contract (no workspace code
/// implements this trait, it only consumes it).
pub trait ParallelIterator: Sized + Send {
    type Item: Send;

    /// Sequential iterator over one chunk's items, in index order.
    #[doc(hidden)]
    type SeqIter: Iterator<Item = Self::Item> + Send;

    /// Exact number of items (all shim iterators are indexed).
    #[doc(hidden)]
    fn pi_len(&self) -> usize;

    /// Splits into `[0, index)` and `[index, len)`.
    #[doc(hidden)]
    fn pi_split_at(self, index: usize) -> (Self, Self);

    /// Degrades to a sequential iterator over the whole remaining range.
    #[doc(hidden)]
    fn pi_seq(self) -> Self::SeqIter;

    /// Maps each item through `map_op` in parallel.
    fn map<R, F>(self, map_op: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Send + Sync,
        R: Send,
    {
        Map { base: self, op: Arc::new(map_op) }
    }

    /// Runs `op` on every item (results discarded, order unspecified —
    /// only the side effects matter to callers).
    fn for_each<F>(self, op: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        let _: Vec<()> = drive(self.map(op));
    }

    /// Collects into `C`, preserving index order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Sums the items. The items are produced in parallel but folded
    /// sequentially in index order, so float sums are deterministic and
    /// equal to the serial result at any thread count.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + Send,
    {
        drive(self).into_iter().sum()
    }

    /// Number of items.
    fn count(self) -> usize {
        self.pi_len()
    }
}

/// Conversion into a [`ParallelIterator`] (`rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

/// Every parallel iterator trivially converts into itself (rayon has
/// the same blanket impl; it is what lets `collect` accept both).
impl<I: ParallelIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I;
    fn into_par_iter(self) -> Self {
        self
    }
}

/// The trait providing `.par_iter()` on `&self`
/// (`rayon::iter::IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'data> {
    type Item: Send + 'data;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoParallelIterator,
{
    type Item = <&'data C as IntoParallelIterator>::Item;
    type Iter = <&'data C as IntoParallelIterator>::Iter;
    fn par_iter(&'data self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// Collection-side counterpart of `collect`
/// (`rayon::iter::FromParallelIterator`).
pub trait FromParallelIterator<T: Send> {
    fn from_par_iter<I>(par_iter: I) -> Self
    where
        I: IntoParallelIterator<Item = T>;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I>(par_iter: I) -> Self
    where
        I: IntoParallelIterator<Item = T>,
    {
        drive(par_iter.into_par_iter())
    }
}

// ---------------------------------------------------------------------------
// The driver
// ---------------------------------------------------------------------------

/// Materializes a parallel iterator into an index-ordered `Vec`.
fn drive<I: ParallelIterator>(iter: I) -> Vec<I::Item> {
    let len = iter.pi_len();
    let threads = crate::current_num_threads();
    if threads <= 1 || len <= 1 {
        return iter.pi_seq().collect();
    }
    let chunk = len.div_ceil(threads * CHUNKS_PER_THREAD).max(1);
    if current_worker().is_some() {
        // Already on a pool worker (e.g. inside `ThreadPool::install`
        // or a nested par_iter): split right here so the whole call
        // tree shares one pool.
        split_drive(iter, chunk)
    } else {
        crate::global_registry().inject_and_wait(move || split_drive(iter, chunk))
    }
}

/// Recursively halves `iter` down to `chunk` items, pairing the halves
/// with `join`, and concatenates left-then-right. Runs on a worker.
fn split_drive<I: ParallelIterator>(iter: I, chunk: usize) -> Vec<I::Item> {
    let len = iter.pi_len();
    if len <= chunk {
        return iter.pi_seq().collect();
    }
    let (left, right) = iter.pi_split_at(len / 2);
    let (mut left_items, right_items) =
        crate::join(|| split_drive(left, chunk), || split_drive(right, chunk));
    left_items.extend(right_items);
    left_items
}

// ---------------------------------------------------------------------------
// Map adaptor
// ---------------------------------------------------------------------------

/// `map` adaptor. The closure is shared by `Arc` so splitting does not
/// require `F: Clone`.
pub struct Map<I, F> {
    base: I,
    op: Arc<F>,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Send + Sync,
    R: Send,
{
    type Item = R;
    type SeqIter = MapSeq<I::SeqIter, F>;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (left, right) = self.base.pi_split_at(index);
        (Map { base: left, op: Arc::clone(&self.op) }, Map { base: right, op: self.op })
    }

    fn pi_seq(self) -> Self::SeqIter {
        MapSeq { base: self.base.pi_seq(), op: self.op }
    }
}

/// Sequential per-chunk iterator behind [`Map`].
pub struct MapSeq<S, F> {
    base: S,
    op: Arc<F>,
}

impl<S, F, R> Iterator for MapSeq<S, F>
where
    S: Iterator,
    F: Fn(S::Item) -> R,
{
    type Item = R;
    fn next(&mut self) -> Option<R> {
        self.base.next().map(|item| (self.op)(item))
    }
}

// ---------------------------------------------------------------------------
// Sources: slices, vectors, arrays, ranges
// ---------------------------------------------------------------------------

/// Parallel iterator over `&[T]` (and `&Vec<T>`, `&[T; N]`).
pub struct SliceIter<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParallelIterator for SliceIter<'data, T> {
    type Item = &'data T;
    type SeqIter = std::slice::Iter<'data, T>;

    fn pi_len(&self) -> usize {
        self.slice.len()
    }

    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (left, right) = self.slice.split_at(index);
        (SliceIter { slice: left }, SliceIter { slice: right })
    }

    fn pi_seq(self) -> Self::SeqIter {
        self.slice.iter()
    }
}

impl<'data, T: Sync> IntoParallelIterator for &'data [T] {
    type Item = &'data T;
    type Iter = SliceIter<'data, T>;
    fn into_par_iter(self) -> Self::Iter {
        SliceIter { slice: self }
    }
}

impl<'data, T: Sync> IntoParallelIterator for &'data Vec<T> {
    type Item = &'data T;
    type Iter = SliceIter<'data, T>;
    fn into_par_iter(self) -> Self::Iter {
        SliceIter { slice: self.as_slice() }
    }
}

impl<'data, T: Sync, const N: usize> IntoParallelIterator for &'data [T; N] {
    type Item = &'data T;
    type Iter = SliceIter<'data, T>;
    fn into_par_iter(self) -> Self::Iter {
        SliceIter { slice: self.as_slice() }
    }
}

/// Owning parallel iterator over a `Vec<T>`.
pub struct VecIter<T> {
    vec: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;
    type SeqIter = std::vec::IntoIter<T>;

    fn pi_len(&self) -> usize {
        self.vec.len()
    }

    fn pi_split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.vec.split_off(index);
        (self, VecIter { vec: tail })
    }

    fn pi_seq(self) -> Self::SeqIter {
        self.vec.into_iter()
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;
    fn into_par_iter(self) -> Self::Iter {
        VecIter { vec: self }
    }
}

/// The trait providing `.par_chunks()` on slices
/// (`rayon::slice::ParallelSlice`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over non-overlapping chunks of `chunk_size`
    /// items (the last chunk may be shorter), in slice order.
    fn par_chunks(&self, chunk_size: usize) -> ChunksIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ChunksIter<'_, T> {
        assert!(chunk_size != 0, "chunk_size must be non-zero");
        ChunksIter { slice: self, chunk_size }
    }
}

/// Parallel iterator over slice chunks (`rayon::slice::Chunks`). Splits
/// happen only on chunk boundaries, so every chunk a worker sees is
/// exactly the chunk the sequential `slice.chunks()` would produce.
pub struct ChunksIter<'data, T> {
    slice: &'data [T],
    chunk_size: usize,
}

impl<'data, T: Sync> ParallelIterator for ChunksIter<'data, T> {
    type Item = &'data [T];
    type SeqIter = std::slice::Chunks<'data, T>;

    fn pi_len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk_size)
    }

    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.chunk_size).min(self.slice.len());
        let (left, right) = self.slice.split_at(mid);
        (
            ChunksIter { slice: left, chunk_size: self.chunk_size },
            ChunksIter { slice: right, chunk_size: self.chunk_size },
        )
    }

    fn pi_seq(self) -> Self::SeqIter {
        self.slice.chunks(self.chunk_size)
    }
}

/// Parallel iterator over an integer range.
pub struct RangeIter<T> {
    range: Range<T>,
}

macro_rules! range_impl {
    ($($ty:ty),*) => {$(
        impl ParallelIterator for RangeIter<$ty> {
            type Item = $ty;
            type SeqIter = Range<$ty>;

            fn pi_len(&self) -> usize {
                if self.range.end <= self.range.start {
                    0
                } else {
                    (self.range.end - self.range.start) as usize
                }
            }

            fn pi_split_at(self, index: usize) -> (Self, Self) {
                let mid = self.range.start + index as $ty;
                (
                    RangeIter { range: self.range.start..mid },
                    RangeIter { range: mid..self.range.end },
                )
            }

            fn pi_seq(self) -> Self::SeqIter {
                self.range
            }
        }

        impl IntoParallelIterator for Range<$ty> {
            type Item = $ty;
            type Iter = RangeIter<$ty>;
            fn into_par_iter(self) -> Self::Iter {
                RangeIter { range: self }
            }
        }
    )*};
}

range_impl!(usize, u32, u64, i32, i64);
