//! Offline shim for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment for this repository has no registry access, so this
//! crate supplies the subset of rayon's API the workspace uses, implemented
//! *sequentially*: `par_iter()` / `into_par_iter()` simply return the
//! corresponding standard-library iterators, and every adaptor after them is
//! the ordinary `Iterator` machinery. Results are therefore identical to
//! rayon's (same ordering, same determinism) — only the wall-clock speedup is
//! absent. Swapping in the real crate is a one-line change in the workspace
//! manifest and requires no source edits.

pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelBridge};
}

pub mod iter {
    /// Sequential stand-in for `rayon::iter::IntoParallelIterator`.
    ///
    /// The returned "parallel" iterator is just the type's standard
    /// `IntoIterator` iterator, so all downstream adaptors (`map`, `filter`,
    /// `collect`, `sum`, …) resolve to `std::iter::Iterator` methods.
    pub trait IntoParallelIterator {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Sequential stand-in for `rayon::iter::IntoParallelRefIterator`
    /// (the trait providing `.par_iter()` on `&self`).
    pub trait IntoParallelRefIterator<'data> {
        type Item: 'data;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
    {
        type Item = <&'data C as IntoIterator>::Item;
        type Iter = <&'data C as IntoIterator>::IntoIter;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Sequential stand-in for `rayon::iter::ParallelBridge`.
    pub trait ParallelBridge: Sized {
        fn par_bridge(self) -> Self;
    }

    impl<I: Iterator> ParallelBridge for I {
        fn par_bridge(self) -> Self {
            self
        }
    }
}

/// Sequential stand-in for `rayon::join`: runs both closures in order.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Reports the parallelism the shim provides: exactly one thread.
#[must_use]
pub fn current_num_threads() -> usize {
    1
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn into_par_iter_on_range() {
        let s: i64 = (0..100i64).into_par_iter().sum();
        assert_eq!(s, 4950);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }
}
