//! Offline shim for [rayon](https://crates.io/crates/rayon) — now with a
//! real work-stealing thread pool.
//!
//! The build environment for this repository has no registry access, so
//! this crate supplies the subset of rayon's API the workspace uses.
//! Earlier revisions were sequential; this one genuinely runs work on
//! multiple threads:
//!
//! * a **global, lazily-initialized pool** (sized by `RAYON_NUM_THREADS`
//!   or the machine's available parallelism), plus explicit pools via
//!   [`ThreadPoolBuilder`] and [`ThreadPool::install`];
//! * [`join`] with **work stealing**: the second closure is pushed onto
//!   the calling worker's deque where idle workers steal it from the
//!   front, while the caller runs the first closure and then either pops
//!   the second back (unstolen fast path) or helps execute other jobs
//!   until the thief finishes;
//! * real parallel `par_iter()` / `into_par_iter()` over slices,
//!   vectors, arrays, and integer ranges, which **chunk by index and
//!   merge in index order** — output is byte-identical to a sequential
//!   run at any thread count (see `iter`).
//!
//! Only the API subset the workspace actually consumes is provided, and
//! that subset matches rayon's signatures (including the `Send`/`Sync`
//! bounds the sequential shim never needed), so swapping in the real
//! crate remains a one-line change in the workspace manifest with no
//! source edits.
//!
//! Panics inside `join` closures or `par_iter` bodies are caught on the
//! executing worker, carried back, and resumed on the calling thread,
//! matching rayon's behavior.

mod registry;

pub mod iter;

use std::sync::{Arc, OnceLock};

use registry::{current_worker, Registry};

pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
        ParallelSlice,
    };
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

/// Runs `oper_a` and `oper_b`, potentially in parallel, and returns both
/// results. On a pool worker, `oper_b` is exposed for stealing while the
/// caller runs `oper_a`; on a plain thread the call hops onto the global
/// pool first (initializing it if needed) and joins there, exactly as
/// real rayon routes a bare `join` through its global registry — so
/// `join` gains parallelism even outside `install`/`par_iter`.
///
/// If either closure panics, the panic is resumed on the caller after
/// both branches have come to rest — a stolen `oper_b` borrows the
/// caller's stack frame and must finish before `join` can unwind.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    match current_worker() {
        Some((registry, index)) => registry.join_here(index, oper_a, oper_b),
        None => global_registry().inject_and_wait(|| join(oper_a, oper_b)),
    }
}

// ---------------------------------------------------------------------------
// Pools
// ---------------------------------------------------------------------------

/// Error returned when a pool cannot be built (matches
/// `rayon::ThreadPoolBuildError` in name and role).
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    message: &'static str,
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.message)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for [`ThreadPool`]s (subset of `rayon::ThreadPoolBuilder`).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    #[must_use]
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// Sets the number of worker threads. Zero (the default) means
    /// automatic: `RAYON_NUM_THREADS` if set to a positive integer,
    /// otherwise the machine's available parallelism.
    #[must_use]
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    fn resolved_threads(&self) -> usize {
        if self.num_threads > 0 {
            return self.num_threads;
        }
        if let Ok(value) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = value.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }

    /// Builds a standalone pool. Its workers shut down when the pool is
    /// dropped (after draining queued jobs).
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let registry = Registry::new(self.resolved_threads());
        let handles = Registry::spawn_workers(&registry);
        Ok(ThreadPool { registry, handles })
    }

    /// Installs this configuration as the global pool. Errors if the
    /// global pool has already been initialized (by an earlier call or
    /// lazily by first use), like rayon's.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let mut fresh = false;
        let _ = GLOBAL.get_or_init(|| {
            fresh = true;
            self.build().expect("building the global pool cannot fail")
        });
        if fresh {
            Ok(())
        } else {
            Err(ThreadPoolBuildError {
                message: "the global thread pool has already been initialized",
            })
        }
    }
}

/// A work-stealing thread pool (subset of `rayon::ThreadPool`).
pub struct ThreadPool {
    registry: Arc<Registry>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Runs `op` on this pool and returns its result. `join` and
    /// `par_iter` calls inside `op` use this pool's workers. If the
    /// caller is already one of this pool's workers, `op` runs inline.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        match current_worker() {
            Some((registry, _)) if std::ptr::eq(registry.id(), self.registry.id()) => op(),
            _ => self.registry.inject_and_wait(op),
        }
    }

    /// Number of worker threads in this pool.
    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        self.registry.num_threads()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.terminate();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// The global pool's registry, initializing the pool on first use.
pub(crate) fn global_registry() -> &'static Registry {
    let pool =
        GLOBAL.get_or_init(|| ThreadPoolBuilder::new().build().expect("building the global pool"));
    &pool.registry
}

/// Number of threads in the current scope: the enclosing pool's size
/// when called on a worker, otherwise the global pool's size
/// (initializing it if needed).
#[must_use]
pub fn current_num_threads() -> usize {
    match current_worker() {
        Some((registry, _)) => registry.num_threads(),
        None => global_registry().num_threads(),
    }
}

/// Index of the calling thread within its pool, or `None` when the
/// caller is not a pool worker. Useful to detect "am I already inside a
/// parallel region".
#[must_use]
pub fn current_thread_index() -> Option<usize> {
    current_worker().map(|(_, index)| index)
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPoolBuilder;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::time::{Duration, Instant};

    fn pool(n: usize) -> super::ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().expect("build pool")
    }

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn par_chunks_matches_sequential_chunks() {
        let v: Vec<usize> = (0..103).collect();
        let p = pool(4);
        let sums: Vec<usize> =
            p.install(|| v.par_chunks(10).map(|c| c.iter().sum::<usize>()).collect());
        let expected: Vec<usize> = v.chunks(10).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, expected, "chunk boundaries must match the sequential chunks");
    }

    #[test]
    fn into_par_iter_on_range() {
        let s: i64 = (0..100i64).into_par_iter().sum();
        assert_eq!(s, 4950);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }

    /// A bare `join` from a non-worker thread routes through the global
    /// pool (as real rayon does) instead of degrading to sequential.
    #[test]
    fn bare_join_lands_on_the_global_pool() {
        assert_eq!(super::current_thread_index(), None);
        let (index, _) = super::join(super::current_thread_index, || ());
        assert!(index.is_some(), "bare join must run on a pool worker");
    }

    /// A worker of pool A blocked in `install` on pool B keeps helping
    /// pool A: a job queued behind the cross-pool install still runs,
    /// so cyclic cross-pool nesting cannot park both pools. Under the
    /// old "park in latch.wait()" behavior the inner A-job would
    /// deadlock — A's only worker is blocked on B while B's job waits
    /// for A's result.
    #[test]
    fn cross_pool_install_keeps_helping_home_pool() {
        let pool_a = pool(1);
        let pool_b = pool(1);
        let value = pool_a.install(|| {
            pool_b.install(|| {
                // Runs on B's worker; A's worker is blocked waiting on
                // this install and must service A's injector meanwhile.
                pool_a.install(|| 11) + 20
            })
        });
        assert_eq!(value, 31);
    }

    /// Proves genuine concurrency: closure `a` spins until `b` has run.
    /// Under the old sequential shim (a() then b()) this would time out.
    #[test]
    fn join_runs_closures_concurrently() {
        let p = pool(2);
        let flag = AtomicBool::new(false);
        p.install(|| {
            super::join(
                || {
                    let start = Instant::now();
                    while !flag.load(Ordering::Acquire) {
                        assert!(
                            start.elapsed() < Duration::from_secs(10),
                            "join branch b was never stolen: pool is not parallel"
                        );
                        std::thread::yield_now();
                    }
                },
                || flag.store(true, Ordering::Release),
            );
        });
    }

    /// par_iter bodies really run on multiple distinct worker threads.
    #[test]
    fn par_iter_uses_multiple_workers() {
        let p = pool(4);
        let seen: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        p.install(|| {
            (0..1000usize)
                .into_par_iter()
                .map(|i| {
                    let w = super::current_thread_index().expect("on a worker");
                    seen[w].fetch_add(1, Ordering::Relaxed);
                    // Uneven work so stealing has something to rebalance.
                    if i % 64 == 0 {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    i
                })
                .for_each(|_| {});
        });
        let active = seen.iter().filter(|c| c.load(Ordering::Relaxed) > 0).count();
        assert!(active >= 2, "expected >= 2 workers to participate, saw {active}");
    }

    /// Index order of the merged output never depends on thread count or
    /// stealing schedule.
    #[test]
    fn collect_is_ordered_at_every_thread_count() {
        let expected: Vec<usize> = (0..997).map(|i| i * 3 + 1).collect();
        for threads in [1, 2, 4, 8] {
            let p = pool(threads);
            let got: Vec<usize> =
                p.install(|| (0..997usize).into_par_iter().map(|i| i * 3 + 1).collect());
            assert_eq!(got, expected, "order broke at {threads} threads");
        }
    }

    /// Float summation folds sequentially, so the bits match serial.
    #[test]
    fn float_sum_is_deterministic() {
        let values: Vec<f64> = (0..2048).map(|i| 1.0 / f64::from(i + 1)).collect();
        let serial: f64 = values.iter().copied().sum();
        let p = pool(8);
        let parallel: f64 = p.install(|| values.par_iter().map(|&x| x).sum());
        assert_eq!(serial.to_bits(), parallel.to_bits());
    }

    #[test]
    fn join_propagates_panic_from_stolen_branch() {
        let p = pool(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.install(|| {
                super::join(|| 1, || -> i32 { panic!("branch b exploded") });
            });
        }));
        assert!(result.is_err(), "panic in join branch must propagate");
    }

    #[test]
    fn par_iter_propagates_panic() {
        let p = pool(4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.install(|| {
                let _: Vec<usize> = (0..100usize)
                    .into_par_iter()
                    .map(|i| if i == 63 { panic!("item 63") } else { i })
                    .collect();
            });
        }));
        assert!(result.is_err(), "panic in par_iter body must propagate");
    }

    /// Nested install on the same pool runs inline instead of
    /// deadlocking the pool's own workers.
    #[test]
    fn nested_install_on_same_pool_is_inline() {
        let p = pool(1);
        let value = p.install(|| p.install(|| 7));
        assert_eq!(value, 7);
    }

    #[test]
    fn current_thread_index_inside_and_outside() {
        assert_eq!(super::current_thread_index(), None);
        let p = pool(3);
        let idx = p.install(super::current_thread_index);
        assert!(matches!(idx, Some(i) if i < 3));
        assert_eq!(p.install(super::current_num_threads), 3);
    }

    #[test]
    fn second_build_global_errors() {
        // Whichever test initializes the global pool first, the second
        // explicit build_global must fail.
        let _ = ThreadPoolBuilder::new().num_threads(2).build_global();
        assert!(ThreadPoolBuilder::new().num_threads(2).build_global().is_err());
    }

    /// Heavier randomized-shape check: many lengths, nested joins via
    /// recursion, always index-ordered.
    #[test]
    fn ordered_merge_survives_stealing_pressure() {
        let p = pool(4);
        for len in [2usize, 3, 17, 64, 255, 1024, 4099] {
            let expected: Vec<String> = (0..len).map(|i| format!("v{i}")).collect();
            let got: Vec<String> =
                p.install(|| (0..len).into_par_iter().map(|i| format!("v{i}")).collect());
            assert_eq!(got, expected, "order broke at len {len}");
        }
    }
}
