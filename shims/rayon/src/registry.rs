//! The work-stealing thread pool behind the shim.
//!
//! One [`Registry`] is a set of worker threads, each owning a deque of
//! [`JobRef`]s, plus one shared injector queue for work arriving from
//! outside the pool. The scheduling discipline is the classic
//! work-stealing arrangement (crossbeam-style deques rebuilt on std
//! `Mutex`/`Condvar`, since this build environment has no registry
//! access):
//!
//! * an owner pushes and pops at the **back** of its own deque (LIFO —
//!   the hot path of a recursive `join` split stays cache-warm on one
//!   thread);
//! * idle workers steal from the **front** of a victim's deque (FIFO —
//!   thieves take the oldest, i.e. largest, pending split);
//! * work submitted from outside any worker goes through the shared
//!   injector queue, which workers drain like a victim deque.
//!
//! Jobs are type-erased pointers to [`StackJob`]s living on the stack of
//! a thread that is blocked on (or will block on) the job's [`Latch`]
//! before the frame dies, so the pointers stay valid for the job's whole
//! life — the same representation real rayon uses. Panics inside a job
//! are caught on the executing worker, carried through the latch, and
//! resumed on the thread that owns the job.

use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// How long a worker with nothing to do sleeps before re-scanning. The
/// condition variable wakeup is the primary mechanism (every push
/// notifies under the sleep lock, so wakeups cannot be lost); the
/// timeout is belt and braces.
const IDLE_SLEEP: Duration = Duration::from_millis(50);

/// How long a thread blocked in `join` (on a stolen branch) sleeps
/// between looking for other work to help with.
const HELP_SLEEP: Duration = Duration::from_millis(1);

// ---------------------------------------------------------------------------
// Latch
// ---------------------------------------------------------------------------

/// A one-shot completion flag a thread can sleep on.
///
/// Lifetime discipline: the latch lives inside a [`StackJob`] on the
/// owner's stack, and the owner destroys that frame the moment it has
/// observed completion. The setter must therefore never touch the latch
/// after the owner can see `done` — so [`Latch::set`] stores `done`
/// *inside* the mutex critical section, and every wait path hands
/// control back to its caller only after acquiring-and-releasing that
/// mutex once (the [`Latch::synchronize`] handshake). A lock-free
/// [`Latch::probe`] may race ahead of the setter's unlock, which is why
/// probing loops must end with `synchronize` before the owner returns.
pub(crate) struct Latch {
    done: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Latch {
    pub(crate) fn new() -> Self {
        Latch { done: AtomicBool::new(false), lock: Mutex::new(()), cv: Condvar::new() }
    }

    /// Marks the latch set and wakes every sleeper. The store happens
    /// under the lock so a waiter that observes `done` and then takes
    /// the lock cannot return (and free this latch) until the setter has
    /// left the critical section — after the guard drops here, `set`
    /// never touches `self` again.
    fn set(&self) {
        let _guard = self.lock.lock().expect("latch lock poisoned");
        self.done.store(true, Ordering::Release);
        self.cv.notify_all();
    }

    /// Non-blocking completion test. A `true` result does NOT yet make
    /// it safe to destroy the latch — the setter may still be inside
    /// `set`'s critical section; call [`Latch::synchronize`] first.
    pub(crate) fn probe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Blocks until the setter has fully left the latch. Call after
    /// `probe()` returned `true`, before the owner's frame may unwind.
    fn synchronize(&self) {
        drop(self.lock.lock().expect("latch lock poisoned"));
    }

    /// Blocks until the latch is set. Returns only after the setter has
    /// left the latch (the loop observes `done` while holding the lock).
    pub(crate) fn wait(&self) {
        let mut guard = self.lock.lock().expect("latch lock poisoned");
        while !self.done.load(Ordering::Acquire) {
            guard = self.cv.wait(guard).expect("latch lock poisoned");
        }
    }

    /// Blocks until the latch is set or `timeout` elapses; returns
    /// whether it is set. A `true` return was observed under the lock,
    /// so it already includes the `synchronize` handshake.
    fn wait_timeout(&self, timeout: Duration) -> bool {
        let guard = self.lock.lock().expect("latch lock poisoned");
        if self.done.load(Ordering::Acquire) {
            return true;
        }
        let (guard, _) = self.cv.wait_timeout(guard, timeout).expect("latch lock poisoned");
        let done = self.done.load(Ordering::Acquire);
        drop(guard);
        done
    }
}

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

/// Type-erased pointer to a pending job. Compared by address when the
/// owner checks whether its latest push is still at the back of its
/// deque (a popped-or-stolen job is never pushed twice, and a stack
/// address cannot be reused while the owning frame is alive, so address
/// equality is identity).
#[derive(Clone, Copy)]
pub(crate) struct JobRef {
    data: *const (),
    exec: unsafe fn(*const ()),
}

impl PartialEq for JobRef {
    fn eq(&self, other: &Self) -> bool {
        // The data pointer alone is identity (see above); comparing the
        // `exec` fn pointer would be meaningless anyway, since fn
        // addresses are not guaranteed unique.
        std::ptr::eq(self.data, other.data)
    }
}

// SAFETY: a JobRef is only created from a StackJob whose owner keeps the
// pointee alive (blocked on its latch) until the job has executed, and
// the job's payload is required to be Send by the public entry points.
unsafe impl Send for JobRef {}

impl JobRef {
    /// Runs the job. Must be called exactly once.
    unsafe fn execute(self) {
        (self.exec)(self.data);
    }
}

/// Result slot of a [`StackJob`].
enum JobResult<R> {
    Pending,
    Ok(R),
    Panic(Box<dyn std::any::Any + Send>),
}

/// A job allocated on the stack of the thread that owns it. The owner
/// hands a [`JobRef`] to the pool, then either executes the job itself
/// (after popping it back, unstolen) or blocks on `latch` until a thief
/// has finished it; either way the frame outlives the execution.
pub(crate) struct StackJob<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<JobResult<R>>,
    pub(crate) latch: Latch,
}

// SAFETY: the UnsafeCells are accessed exclusively by the executing
// thread between steal/pop and latch-set, and by the owner only after
// the latch is set (release/acquire ordered by the latch's atomics).
unsafe impl<F: Send, R: Send> Sync for StackJob<F, R> {}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(func: F) -> Self {
        StackJob {
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(JobResult::Pending),
            latch: Latch::new(),
        }
    }

    /// The pool-facing handle. Caller must keep `self` alive (and pinned
    /// — do not move it) until the job has executed.
    pub(crate) fn as_job_ref(&self) -> JobRef {
        JobRef { data: (self as *const Self).cast(), exec: Self::execute_erased }
    }

    unsafe fn execute_erased(ptr: *const ()) {
        let job: &Self = &*ptr.cast();
        let func = (*job.func.get()).take().expect("job executed twice");
        let outcome = match panic::catch_unwind(AssertUnwindSafe(func)) {
            Ok(value) => JobResult::Ok(value),
            Err(payload) => JobResult::Panic(payload),
        };
        *job.result.get() = outcome;
        job.latch.set();
    }

    /// Runs the job inline on the owner's thread (the unstolen fast
    /// path of `join`).
    pub(crate) fn execute_inline(&self) {
        // SAFETY: the ref came off our own deque, so nobody else has it.
        unsafe { Self::execute_erased((self as *const Self).cast()) }
    }

    /// Retrieves the result, resuming the job's panic if it had one.
    /// Call only after the latch is set.
    pub(crate) fn into_result(self) -> R {
        match self.result.into_inner() {
            JobResult::Ok(value) => value,
            JobResult::Panic(payload) => panic::resume_unwind(payload),
            JobResult::Pending => unreachable!("result taken before the job completed"),
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// One worker's state: its deque. (A `Mutex<VecDeque>` per worker keeps
/// the implementation std-only; contention is per push/pop/steal of
/// coarse chunk-sized jobs, not per item.)
struct WorkerState {
    deque: Mutex<VecDeque<JobRef>>,
}

/// The shared state of one thread pool.
pub(crate) struct Registry {
    workers: Vec<WorkerState>,
    injected: Mutex<VecDeque<JobRef>>,
    sleep_lock: Mutex<()>,
    sleep_cv: Condvar,
    shutdown: AtomicBool,
}

thread_local! {
    /// Which pool (and which worker slot of it) the current thread is,
    /// if any. Raw pointer: every worker thread holds an `Arc` to its
    /// own registry for its whole life, so dereferencing on that thread
    /// is always valid.
    static CURRENT: Cell<Option<(*const Registry, usize)>> = const { Cell::new(None) };
}

/// `(registry, index)` of the calling thread, if it is a pool worker.
pub(crate) fn current_worker() -> Option<(&'static Registry, usize)> {
    CURRENT.with(|c| {
        c.get().map(|(ptr, index)| {
            // SAFETY: see CURRENT — the registry outlives the worker
            // thread that is asking.
            (unsafe { &*ptr }, index)
        })
    })
}

impl Registry {
    pub(crate) fn new(num_threads: usize) -> Arc<Self> {
        let workers =
            (0..num_threads).map(|_| WorkerState { deque: Mutex::new(VecDeque::new()) }).collect();
        Arc::new(Registry {
            workers,
            injected: Mutex::new(VecDeque::new()),
            sleep_lock: Mutex::new(()),
            sleep_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        })
    }

    pub(crate) fn num_threads(&self) -> usize {
        self.workers.len()
    }

    /// Address identity, used to recognize "already on a worker of this
    /// pool".
    pub(crate) fn id(&self) -> *const Registry {
        self
    }

    /// Wakes every sleeping worker. Taking the sleep lock first closes
    /// the race with a worker that re-checked the queues and is about to
    /// wait: it cannot miss a notification sent after its re-check.
    fn notify(&self) {
        let _guard = self.sleep_lock.lock().expect("sleep lock poisoned");
        self.sleep_cv.notify_all();
    }

    /// Pushes onto the back of worker `index`'s own deque.
    fn push_local(&self, index: usize, job: JobRef) {
        self.workers[index].deque.lock().expect("deque poisoned").push_back(job);
        self.notify();
    }

    /// Pops `job` back off worker `index`'s deque if — and only if — it
    /// is still there. By the LIFO discipline everything pushed above it
    /// has been popped or stolen already, so it is at the back or gone.
    fn pop_local_if(&self, index: usize, job: JobRef) -> bool {
        let mut deque = self.workers[index].deque.lock().expect("deque poisoned");
        if deque.back() == Some(&job) {
            deque.pop_back();
            true
        } else {
            false
        }
    }

    /// Queues work from outside the pool.
    fn inject(&self, job: JobRef) {
        self.injected.lock().expect("injector poisoned").push_back(job);
        self.notify();
    }

    /// Finds one unit of work for worker `index`: own deque (back,
    /// LIFO), then the injector, then the other workers' deques (front,
    /// FIFO), scanned starting after `index` so thieves spread out.
    fn find_work(&self, index: usize) -> Option<JobRef> {
        if let Some(job) = self.workers[index].deque.lock().expect("deque poisoned").pop_back() {
            return Some(job);
        }
        if let Some(job) = self.injected.lock().expect("injector poisoned").pop_front() {
            return Some(job);
        }
        let n = self.workers.len();
        for offset in 1..n {
            let victim = (index + offset) % n;
            if let Some(job) =
                self.workers[victim].deque.lock().expect("deque poisoned").pop_front()
            {
                return Some(job);
            }
        }
        None
    }

    /// Whether any queue visibly holds work (sleep-path double check).
    fn has_visible_work(&self) -> bool {
        if !self.injected.lock().expect("injector poisoned").is_empty() {
            return true;
        }
        self.workers.iter().any(|w| !w.deque.lock().expect("deque poisoned").is_empty())
    }

    /// The main loop of worker `index`.
    fn worker_main(self: &Arc<Self>, index: usize) {
        CURRENT.with(|c| c.set(Some((Arc::as_ptr(self), index))));
        loop {
            if let Some(job) = self.find_work(index) {
                // SAFETY: each JobRef is executed exactly once — popping
                // or stealing removes it from every queue.
                unsafe { job.execute() };
                continue;
            }
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            let guard = self.sleep_lock.lock().expect("sleep lock poisoned");
            // Double check under the lock (pushes notify while holding
            // it, so nothing can slip between this check and the wait).
            if self.shutdown.load(Ordering::Acquire) || self.has_visible_work() {
                continue;
            }
            let _ = self.sleep_cv.wait_timeout(guard, IDLE_SLEEP).expect("sleep lock poisoned");
        }
    }

    /// Blocks worker `index` until `latch` is set, executing any other
    /// available work in the meantime (so a thread waiting on a stolen
    /// `join` branch keeps contributing instead of idling). `latch` need
    /// not belong to this registry — a worker injecting into a foreign
    /// pool helps its *home* pool while the foreign job runs. Returns
    /// only after the setter has fully left the latch (the
    /// `synchronize` handshake), so the caller may free it.
    fn wait_with_help(&self, index: usize, latch: &Latch) {
        loop {
            if latch.probe() {
                // The lock-free probe can observe completion while the
                // setter is still inside `Latch::set`; rendezvous on the
                // latch lock before letting the owner's frame die.
                latch.synchronize();
                return;
            }
            if let Some(job) = self.find_work(index) {
                // SAFETY: popped/stolen exactly once, as in worker_main.
                unsafe { job.execute() };
            } else if latch.wait_timeout(HELP_SLEEP) {
                // Completion was observed under the latch lock — already
                // synchronized with the setter.
                return;
            }
        }
    }

    /// Runs `op` to completion from a thread that is *not* a worker of
    /// this pool: the job is injected and the caller blocks on its
    /// latch. If the caller is a worker of *another* pool, it keeps
    /// draining its home pool's work while waiting, so cyclic cross-pool
    /// `install`s cannot park every worker of both pools on each other's
    /// injectors.
    pub(crate) fn inject_and_wait<F, R>(&self, op: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        let job = StackJob::new(op);
        self.inject(job.as_job_ref());
        match current_worker() {
            Some((home, index)) if !std::ptr::eq(home.id(), self.id()) => {
                home.wait_with_help(index, &job.latch);
            }
            _ => job.latch.wait(),
        }
        job.into_result()
    }

    /// The work-stealing `join`: runs `oper_a` inline and `oper_b`
    /// either inline (if no thief claimed it) or on whichever worker
    /// stole it. Must be called on worker `index` of this registry.
    pub(crate) fn join_here<A, B, RA, RB>(&self, index: usize, oper_a: A, oper_b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        let job_b = StackJob::new(oper_b);
        let ref_b = job_b.as_job_ref();
        self.push_local(index, ref_b);

        let result_a = match panic::catch_unwind(AssertUnwindSafe(oper_a)) {
            Ok(value) => value,
            Err(payload) => {
                // `oper_a` panicked. `oper_b` may already be running on
                // a thief that borrows this frame, so the frame must not
                // unwind until the job is reclaimed or finished.
                if !self.pop_local_if(index, ref_b) {
                    self.wait_with_help(index, &job_b.latch);
                }
                panic::resume_unwind(payload);
            }
        };

        if self.pop_local_if(index, ref_b) {
            job_b.execute_inline();
        } else {
            self.wait_with_help(index, &job_b.latch);
        }
        (result_a, job_b.into_result())
    }

    /// Begins shutdown: workers exit once their queues drain.
    pub(crate) fn terminate(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.notify();
    }

    /// Spawns the worker threads for `registry` and returns their
    /// handles.
    pub(crate) fn spawn_workers(registry: &Arc<Registry>) -> Vec<std::thread::JoinHandle<()>> {
        (0..registry.num_threads())
            .map(|index| {
                let reg = Arc::clone(registry);
                std::thread::Builder::new()
                    .name(format!("rayon-shim-{index}"))
                    .spawn(move || reg.worker_main(index))
                    .expect("failed to spawn pool worker")
            })
            .collect()
    }
}
